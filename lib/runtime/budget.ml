(* Resource budgets for the worst-case-intractable solvers.

   A budget combines a wall-clock deadline, a monotone fuel counter and
   optional recursion/size limits. Solvers consume fuel through the
   ambient [tick] installed by {!Guard.run}. The fast path is a single
   decrement-and-branch on a prepaid [credit] counter, so ticks can sit
   inside the hottest loops; fuel accounting and wall-clock reads are
   amortized into a replenish step that runs at most once per
   [clock_period] ticks. *)

type failure =
  | Timeout
  | Fuel_exhausted of string
  | Limit_exceeded of string
  | Solver_error of string

exception Exhausted of failure

(* --- the clock --------------------------------------------------------- *)

module Clock = struct
  let source : (unit -> float) option ref = ref None

  (* Deadlines must not trust the raw wall clock: an NTP step backwards
     would silently extend every installed budget. [now] never goes
     backwards within one source's lifetime. *)
  let last = ref neg_infinity

  let raw () = match !source with None -> Unix.gettimeofday () | Some f -> f ()

  let now () =
    let t = raw () in
    if t > !last then begin
      last := t;
      t
    end
    else !last

  let set_source s =
    source := s;
    (* A fresh source starts its own timeline: without this reset a fake
       clock starting below the real time would be clamped forever. *)
    last := neg_infinity

  (* Delays go through the same seam as time reads: retry backoff and
     breaker cool-downs must be testable without actually sleeping, and
     auditable by the determinism lint the same way [now] is. *)
  let sleeper : (float -> unit) option ref = ref None

  let sleep s =
    if s > 0.0 then
      match !sleeper with None -> Unix.sleepf s | Some f -> f s

  let set_sleeper f = sleeper := f
end

(* --- deterministic fault injection ------------------------------------- *)

(* Probabilities are compared against the low [chaos_bits] bits of a
   xorshift stream, so a run is reproducible from its integer seed
   alone — no [Random] state involved. *)
let chaos_bits = 20
let chaos_mask = (1 lsl chaos_bits) - 1

type chaos = {
  c_seed : int;
  c_threshold : int;  (* abort when (state land chaos_mask) < threshold *)
  mutable c_state : int;
}

let chaos_of ~seed ~rate =
  if not (rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Budget.make: chaos rate must be within [0, 1]";
  let state = (seed + 1) * 0x2545F4914F6CDD1 land max_int in
  {
    c_seed = seed;
    c_threshold = int_of_float (rate *. float_of_int (chaos_mask + 1));
    c_state = (if state = 0 then 0x2545F4914F6CDD1 else state);
  }

let chaos_step c what =
  let s = c.c_state in
  let s = s lxor (s lsl 13) land max_int in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) land max_int in
  let s = if s = 0 then 0x2545F4914F6CDD1 else s in
  c.c_state <- s;
  if s land chaos_mask < c.c_threshold then
    raise (Exhausted (Fuel_exhausted ("chaos injection at " ^ what)))

(* --- budgets ----------------------------------------------------------- *)

type t = {
  timeout : float option;  (* the relative timeout [make] was given *)
  deadline : float option;  (* absolute, Clock seconds *)
  initial_fuel : int;  (* max_int means unlimited *)
  mutable fuel : int;  (* remaining fuel not yet handed out as credit *)
  max_recursion : int option;
  max_size : int option;
  mutable credit : int;  (* prepaid ticks before the next replenish *)
  chaos : chaos option;
}

let clock_period = 1024

let unlimited =
  {
    timeout = None;
    deadline = None;
    initial_fuel = max_int;
    fuel = max_int;
    max_recursion = None;
    max_size = None;
    credit = clock_period;
    chaos = None;
  }

let make ?timeout ?fuel ?max_recursion ?max_size ?chaos () =
  (match timeout with
  | Some s when s < 0.0 -> invalid_arg "Budget.make: negative timeout"
  | _ -> ());
  (match fuel with
  | Some f when f < 1 -> invalid_arg "Budget.make: fuel must be >= 1"
  | _ -> ());
  let deadline = Option.map (fun s -> Clock.now () +. s) timeout in
  let initial_fuel = match fuel with Some f -> f | None -> max_int in
  {
    timeout;
    deadline;
    initial_fuel;
    fuel = initial_fuel;
    max_recursion;
    max_size;
    (* The first tick replenishes, which reads the clock, so an
       already-expired deadline is noticed immediately rather than
       [clock_period] ticks later. *)
    credit = 0;
    chaos = Option.map (fun (seed, rate) -> chaos_of ~seed ~rate) chaos;
  }

let refresh b = { b with fuel = b.initial_fuel; credit = 0 }

let escalate ?(factor = 4.0) ?(extend_deadline = false) b =
  if factor < 1.0 then invalid_arg "Budget.escalate: factor must be >= 1";
  let initial_fuel =
    if b.initial_fuel = max_int then max_int
    else
      let f = float_of_int b.initial_fuel *. factor in
      if f >= float_of_int max_int then max_int else int_of_float f
  in
  let timeout, deadline =
    match b.timeout with
    | Some s when extend_deadline ->
        let s = s *. factor in
        (Some s, Some (Clock.now () +. s))
    | _ -> (b.timeout, b.deadline)
  in
  { b with timeout; deadline; initial_fuel; fuel = initial_fuel; credit = 0 }

let is_unlimited b =
  b.deadline = None && b.initial_fuel = max_int && b.max_recursion = None
  && b.max_size = None
  && b.chaos == None

let remaining_fuel b =
  if b.initial_fuel = max_int then None else Some (b.fuel + b.credit)

let remaining_time b = Option.map (fun d -> d -. Clock.now ()) b.deadline

(* --- the ambient budget ------------------------------------------------ *)

let current = ref unlimited

let install b =
  let previous = !current in
  current := b;
  previous

let installed () = !current

(* Slow path, at most once per [clock_period] ticks: read the clock if
   there is a deadline, then prepay the next batch of ticks out of the
   remaining fuel. The last fuel unit is never prepaid — spending it
   must raise — so a budget with fuel [f] admits exactly [f - 1] ticks
   and raises on the [f]-th, as if fuel were decremented per tick. *)
let replenish b what =
  (* [>=], not [>]: a deadline of "now" (e.g. [~timeout:0.0]) must trip
     on the very first replenish even when the clock has not advanced
     since [make] read it. *)
  (match b.deadline with
  | Some d when Clock.now () >= d -> raise (Exhausted Timeout)
  | _ -> ());
  if b.fuel = max_int then b.credit <- clock_period - 1
  else if b.fuel <= 1 then begin
    b.fuel <- 0;
    raise (Exhausted (Fuel_exhausted what))
  end
  else begin
    let batch = if b.fuel - 1 < clock_period then b.fuel - 1 else clock_period in
    b.fuel <- b.fuel - batch;
    b.credit <- batch - 1 (* the current tick consumes one *)
  end

let tick ?(what = "solver") () =
  let b = !current in
  (match b.chaos with None -> () | Some c -> chaos_step c what);
  if b.credit > 0 then b.credit <- b.credit - 1 else replenish b what

let check_size ?(what = "structure") n =
  match !current.max_size with
  | Some cap when n > cap ->
      raise
        (Exhausted
           (Limit_exceeded
              (Printf.sprintf "%s: size %d exceeds the limit %d" what n cap)))
  | _ -> ()

let check_depth ?(what = "recursion") d =
  match !current.max_recursion with
  | Some cap when d > cap ->
      raise
        (Exhausted
           (Limit_exceeded
              (Printf.sprintf "%s: depth %d exceeds the limit %d" what d cap)))
  | _ -> ()

let pp fmt b =
  if is_unlimited b then Format.pp_print_string fmt "unlimited"
  else begin
    let parts =
      List.filter_map Fun.id
        [
          Option.map (fun d -> Printf.sprintf "deadline in %.3fs"
                         (d -. Clock.now ())) b.deadline;
          (if b.initial_fuel = max_int then None
           else
             Some
               (Printf.sprintf "fuel %d/%d" (b.fuel + b.credit) b.initial_fuel));
          Option.map (Printf.sprintf "max-recursion %d") b.max_recursion;
          Option.map (Printf.sprintf "max-size %d") b.max_size;
          Option.map
            (fun c ->
              Printf.sprintf "chaos seed %d rate %.4f" c.c_seed
                (float_of_int c.c_threshold /. float_of_int (chaos_mask + 1)))
            b.chaos;
        ]
    in
    Format.pp_print_string fmt (String.concat ", " parts)
  end
