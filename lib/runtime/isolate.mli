(** Hard, non-cooperative isolation: run a solver thunk in a forked
    worker process with a wall-clock kill.

    {!Guard.run} keeps its promises only while the solver cooperates —
    ticks in every loop, bounded native stack, survivable allocation.
    [Isolate.run] holds them against a hostile computation too: the
    worker is SIGKILLed once the deadline plus a grace period passes,
    and every abnormal exit (signal, OOM kill, stack-overflow crash,
    marshal failure) comes back as a structured {!Guard.failure}.

    The price is a [fork] and a [Marshal] round-trip per call (see the
    [runtime/isolate_overhead] bench), plus the fork-safety caveats:
    the worker inherits a copy of the parent's state, and its result
    must be marshalable — plain data and closures are fine, custom
    blocks (channels, file descriptors) are not. Unix only. *)

val run :
  ?budget:Budget.t ->
  ?timeout:float ->
  ?grace:float ->
  (unit -> 'a) ->
  ('a, Guard.failure) result
(** [run ?budget ?timeout ?grace f] forks, runs [Guard.run budget f] in
    the worker (default budget: the ambient one), and reads the
    marshaled result back. The kill deadline is [timeout] seconds from
    now when given, else the budget's remaining time, else none; the
    worker is SIGKILLed [grace] (default 1.0) seconds after it passes,
    which maps to [Error Timeout]. A worker the kernel kills instead
    (OOM, SIGSEGV from native-stack exhaustion) maps to
    [Error (Limit_exceeded _)].
    @raise Invalid_argument on a negative [timeout] or [grace]. *)

val runner : ?grace:float -> unit -> Guard.runner
(** [runner ()] packages {!run} as a {!Guard.runner}, for call sites
    (the degradation ladder, [cqsep --isolate]) that choose their
    execution strategy at run time. *)
