(** Hard, non-cooperative isolation: run a solver thunk in a forked
    worker process with a wall-clock kill.

    {!Guard.run} keeps its promises only while the solver cooperates —
    ticks in every loop, bounded native stack, survivable allocation.
    [Isolate] holds them against a hostile computation too: the worker
    is SIGKILLed once the deadline plus a grace period passes, and
    every abnormal exit (signal, OOM kill, stack-overflow crash,
    marshal failure) comes back as a structured {!Guard.failure}.

    Two interfaces share the same worker machinery: the one-shot
    blocking {!run}, and the {!spawn}/{!poll}/{!await} triple that
    supervisor pools use to multiplex many workers over one [select]
    loop without blocking on any single one.

    The price is a [fork] and a [Marshal] round-trip per call (see the
    [runtime/isolate_overhead] bench), plus the fork-safety caveats:
    the worker inherits a copy of the parent's state, and its result
    must be marshalable — plain data and closures are fine, custom
    blocks (channels, file descriptors) are not. Unix only.

    Reaping: every worker is [waitpid]ed exactly once (EINTR retried)
    on every path out of {!await}/{!poll}/{!run} — including
    kill-by-deadline, undecodable results, and unexpected drain
    errors — so repeated runs cannot accumulate zombie children. *)

val run :
  ?budget:Budget.t ->
  ?timeout:float ->
  ?grace:float ->
  (unit -> 'a) ->
  ('a, Guard.failure) result
(** [run ?budget ?timeout ?grace f] forks, runs [Guard.run budget f] in
    the worker (default budget: the ambient one), and reads the
    marshaled result back. The kill deadline is [timeout] seconds from
    now when given, else the budget's remaining time, else none; the
    worker is SIGKILLed [grace] (default 1.0) seconds after it passes,
    which maps to [Error Timeout]. A worker the kernel kills instead
    (OOM, SIGSEGV from native-stack exhaustion) maps to
    [Error (Limit_exceeded _)].
    @raise Invalid_argument on a negative [timeout] or [grace]. *)

val runner : ?grace:float -> unit -> Guard.runner
(** [runner ()] packages {!run} as a {!Guard.runner}, for call sites
    (the degradation ladder, [cqsep --isolate]) that choose their
    execution strategy at run time. *)

(** {2 Non-blocking workers}

    A supervisor pool spawns several workers, [select]s over their
    {!poll_fd}s, and {!poll}s whichever become readable. *)

type 'a worker
(** A forked worker computing an ['a]. Single-owner and not
    thread-safe, like the rest of the runtime. *)

val spawn :
  ?budget:Budget.t -> ?timeout:float -> ?grace:float -> (unit -> 'a) ->
  'a worker
(** [spawn ?budget ?timeout ?grace f] forks a worker exactly as {!run}
    does, but returns immediately. The caller must eventually {!await}
    (or {!poll} to completion) the worker, or it leaks a child process.
    @raise Invalid_argument on a negative [timeout] or [grace]. *)

val pid : _ worker -> int
(** The worker's process id. *)

val poll_fd : _ worker -> Unix.file_descr option
(** The read end of the worker's result pipe — the fd to [select] on.
    [None] once the worker has finished and the fd is closed. *)

val kill_deadline : _ worker -> float option
(** The absolute {!Budget.Clock} time past which {!poll}/{!await} will
    SIGKILL the worker; [None] when it may run forever. Use it to bound
    the [select] timeout of a multiplexing loop. *)

val poll : 'a worker -> ('a, Guard.failure) result option
(** [poll w] pumps any bytes the worker has written without blocking.
    [Some result] once the worker has finished (the result is memoized;
    further polls return the same value), [None] while it is still
    running. A worker past its {!kill_deadline} is SIGKILLed here;
    shortly after, a subsequent poll observes EOF and returns
    [Some (Error Timeout)]. *)

val await : 'a worker -> ('a, Guard.failure) result
(** [await w] blocks until the worker finishes (killing it past its
    deadline, as {!run} does) and returns its result. Idempotent after
    completion. *)

val force_kill : _ worker -> unit
(** SIGKILL the worker now. The next {!poll}/{!await} reaps it and
    returns [Error Timeout]. No-op on a finished worker. *)

val at_fork_child : (unit -> unit) -> unit
(** Register a hook to run inside every freshly forked worker, before
    it computes. Daemons use this to close inherited process-wide fds
    (the listening socket, journals) in workers — otherwise a worker
    that outlives a crashed parent holds them open and, e.g., keeps
    the socket answering connects with nobody accepting. Hooks must
    not raise (failures are swallowed); registrations are for the
    process lifetime (reset via {!Runtime_state}).

    Independent of any registered hooks, every fresh worker calls
    {!Runtime_state.reset_caches} first: inherited memo tables are
    dropped before the worker computes, so stale or corrupted parent
    cache state cannot change a child's verdict, while
    configuration-kind state (e.g. the numeric-tier selector) keeps
    its value. *)
