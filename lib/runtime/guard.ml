type failure = Budget.failure =
  | Timeout
  | Fuel_exhausted of string
  | Limit_exceeded of string
  | Solver_error of string

let failure_to_string = function
  | Timeout -> "timeout: wall-clock deadline exceeded"
  | Fuel_exhausted what -> Printf.sprintf "fuel exhausted in %s" what
  | Limit_exceeded what -> Printf.sprintf "limit exceeded: %s" what
  | Solver_error msg -> Printf.sprintf "solver error: %s" msg

let pp_failure fmt f = Format.pp_print_string fmt (failure_to_string f)

let is_resource_failure = function
  | Timeout | Fuel_exhausted _ | Limit_exceeded _ -> true
  | Solver_error _ -> false

let run budget f =
  let previous = Budget.install budget in
  let restore () = ignore (Budget.install previous) in
  match f () with
  | v ->
      restore ();
      Ok v
  | exception e -> begin
      restore ();
      match e with
      | Budget.Exhausted failure -> Error failure
      | Stack_overflow -> Error (Limit_exceeded "stack overflow")
      | Out_of_memory -> Error (Limit_exceeded "out of memory")
      | Invalid_argument msg | Failure msg -> Error (Solver_error msg)
      | Not_found -> Error (Solver_error "internal lookup failed (Not_found)")
      | Division_by_zero -> Error (Solver_error "division by zero")
      | e -> raise e
    end

type runner = { run : 'a. Budget.t -> (unit -> 'a) -> ('a, failure) result }

let runner = { run }

let retriable ~extend_deadline = function
  | Fuel_exhausted _ | Limit_exceeded _ -> true
  (* Without a deadline extension, retrying a timeout under the same
     absolute deadline would fail instantly. *)
  | Timeout -> extend_deadline
  | Solver_error _ -> false

let retrying ?(attempts = 2) ?(factor = 4.0) ?(extend_deadline = false) inner =
  if attempts < 1 then invalid_arg "Guard.retrying: attempts must be >= 1";
  let run : 'a. Budget.t -> (unit -> 'a) -> ('a, failure) result =
   fun budget f ->
    let rec go attempt b =
      match inner.run b f with
      | Ok _ as ok -> ok
      | Error failure when attempt < attempts && retriable ~extend_deadline failure ->
          go (attempt + 1) (Budget.escalate ~factor ~extend_deadline b)
      | Error _ as err -> err
    in
    go 1 budget
  in
  { run }

let run_result budget f =
  match run budget f with
  | Ok (Ok _ as ok) -> ok
  | Ok (Error _ as err) -> err
  | Error failure -> Error failure

let solver_error fmt =
  Printf.ksprintf
    (fun msg -> raise (Budget.Exhausted (Solver_error msg)))
    fmt
