type failure = Budget.failure =
  | Timeout
  | Fuel_exhausted of string
  | Limit_exceeded of string
  | Solver_error of string

let failure_to_string = function
  | Timeout -> "timeout: wall-clock deadline exceeded"
  | Fuel_exhausted what -> Printf.sprintf "fuel exhausted in %s" what
  | Limit_exceeded what -> Printf.sprintf "limit exceeded: %s" what
  | Solver_error msg -> Printf.sprintf "solver error: %s" msg

let pp_failure fmt f = Format.pp_print_string fmt (failure_to_string f)

let is_resource_failure = function
  | Timeout | Fuel_exhausted _ | Limit_exceeded _ -> true
  | Solver_error _ -> false

let run budget f =
  let previous = Budget.install budget in
  let restore () = ignore (Budget.install previous) in
  match f () with
  | v ->
      restore ();
      Ok v
  | exception e -> begin
      restore ();
      match e with
      | Budget.Exhausted failure -> Error failure
      | Stack_overflow -> Error (Limit_exceeded "stack overflow")
      | Out_of_memory -> Error (Limit_exceeded "out of memory")
      | Invalid_argument msg | Failure msg -> Error (Solver_error msg)
      | Not_found -> Error (Solver_error "internal lookup failed (Not_found)")
      | Division_by_zero -> Error (Solver_error "division by zero")
      | e -> raise e
    end

type runner = { run : 'a. Budget.t -> (unit -> 'a) -> ('a, failure) result }

let runner = { run }

let retriable ~extend_deadline = function
  | Fuel_exhausted _ | Limit_exceeded _ -> true
  (* Without a deadline extension, retrying a timeout under the same
     absolute deadline would fail instantly. *)
  | Timeout -> extend_deadline
  | Solver_error _ -> false

(* Deterministic bounded jitter for retry backoff: the same xorshift
   scheme the budget's chaos injection uses, seeded explicitly by the
   caller (e.g. from a job-id checksum) rather than by [Random] or the
   wall clock, so a retry schedule replays bit-for-bit from its seed.
   Each draw is a float in [0, 1). *)
let jitter_stream seed =
  let state = ref ((seed + 1) * 0x2545F4914F6CDD1 land max_int) in
  if !state = 0 then state := 0x2545F4914F6CDD1;
  fun () ->
    let s = !state in
    let s = s lxor (s lsl 13) land max_int in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) land max_int in
    let s = if s = 0 then 0x2545F4914F6CDD1 else s in
    state := s;
    float_of_int (s land 0xFFFFF) /. float_of_int 0x100000

let retrying ?(attempts = 2) ?(factor = 4.0) ?(extend_deadline = false)
    ?(backoff = 0.0) ?jitter_seed inner =
  if attempts < 1 then invalid_arg "Guard.retrying: attempts must be >= 1";
  if backoff < 0.0 then invalid_arg "Guard.retrying: backoff must be >= 0";
  let run : 'a. Budget.t -> (unit -> 'a) -> ('a, failure) result =
   fun budget f ->
    let draw =
      match jitter_seed with
      | None -> fun () -> 1.0
      | Some seed ->
          let next = jitter_stream seed in
          (* Bounded jitter: scale each delay into [1/2, 1) of its
             nominal value, so synchronized workers de-correlate
             without any of them waiting longer than the nominal
             exponential schedule. *)
          fun () -> 0.5 +. (0.5 *. next ())
    in
    let rec go attempt b =
      match inner.run b f with
      | Ok _ as ok -> ok
      | Error failure when attempt < attempts && retriable ~extend_deadline failure ->
          if backoff > 0.0 then
            Budget.Clock.sleep
              (backoff *. (2.0 ** float_of_int (attempt - 1)) *. draw ());
          go (attempt + 1) (Budget.escalate ~factor ~extend_deadline b)
      | Error _ as err -> err
    in
    go 1 budget
  in
  { run }

let run_result budget f =
  match run budget f with
  | Ok (Ok _ as ok) -> ok
  | Ok (Error _ as err) -> err
  | Error failure -> Error failure

let solver_error fmt =
  Printf.ksprintf
    (fun msg -> raise (Budget.Exhausted (Solver_error msg)))
    fmt
