(** Fault-tolerant sharded execution with a deterministic merge.

    [Shardexec] partitions an [n]-unit work space (feature-query
    candidates, indicator-matrix columns) into contiguous shard
    descriptors, computes each shard in a budgeted {!Isolate} fork
    worker, and folds the per-shard results back together in fixed
    shard-index order. Every failure mode is handled structurally:

    - a worker killed by signal, OOM or deadline gets its shard
      requeued under an escalated budget ({!Budget.escalate}), a
      bounded number of times;
    - a shard that kills its worker {!plan.quarantine_kills} times is
      quarantined and bisected into two sub-shards, recursively, until
      the poisonous unit is isolated at width one and reported;
    - a straggling shard past a p95-based deadline gets a speculative
      duplicate worker; the first terminal result wins, the resolution
      is journaled, and only then is the loser killed and reaped;
    - a clean in-worker resource failure (fuel, cooperative limits) is
      retried with escalating budgets up to {!plan.max_attempts}; a
      solver error aborts the run immediately (retry would not help).

    Determinism: provided [compute] is a function of the range alone
    and splits homomorphically — [compute {lo; hi}] equals
    [merge (compute {lo; mid}) (compute {mid; hi})] for every interior
    [mid] — the merged result is byte-identical to the sequential
    [compute {lo = 0; hi = n}], no matter which workers die, which
    shards are bisected, or in which order shards complete: results
    are reduced in range order by {!merge_results}, never in
    completion order. Forked workers drop inherited caches on startup
    (see {!Isolate.at_fork_child}), so parent cache state cannot leak
    into a shard result.

    Like the rest of the runtime, the engine is single-owner and not
    thread-safe; engine counters and the per-run journal are
    registered with {!Runtime_state}. *)

type range = { lo : int; hi : int }
(** A half-open interval [\[lo, hi)] of work-unit indexes. *)

type plan = {
  shards : int;  (** target number of initial shards *)
  workers : int;  (** maximum concurrent worker processes *)
  max_attempts : int;
      (** total attempts per shard for clean resource failures *)
  quarantine_kills : int;
      (** worker deaths before a shard is quarantined and bisected *)
  speculate : bool;  (** duplicate stragglers past the p95 deadline *)
  grace : float;  (** SIGKILL grace passed to {!Isolate.spawn} *)
}

val plan :
  ?shards:int ->
  ?workers:int ->
  ?max_attempts:int ->
  ?quarantine_kills:int ->
  ?speculate:bool ->
  ?grace:float ->
  unit ->
  plan
(** [plan ()] is the default plan: 4 shards, [min shards 8] workers,
    3 attempts, quarantine after 2 kills, speculation on, 1s grace.
    @raise Invalid_argument on a non-positive [shards]/[workers]/
    [max_attempts]/[quarantine_kills] or a negative [grace]. *)

(** One entry of the engine's per-run journal, oldest first. *)
type event =
  | Dispatched of range * int  (** shard, 1-based attempt *)
  | Completed of range * int
  | Requeued of range * Guard.failure
      (** clean resource failure; redispatched under a bigger budget *)
  | Killed of range * int  (** worker died; death count so far *)
  | Bisected of range * range * range  (** quarantined shard, halves *)
  | Poison of int * Guard.failure
      (** the isolated single-unit shard that keeps killing workers *)
  | Speculated of range  (** duplicate launched for a straggler *)
  | Spec_resolved of range * [ `Original | `Duplicate ]
      (** first terminal result won; journaled before the loser is
          killed *)

type stats = {
  mutable dispatched : int;
  mutable completed : int;
  mutable requeued : int;
  mutable kills : int;
  mutable bisections : int;
  mutable speculations : int;
  mutable spec_losers : int;
  mutable max_inflight : int;
}

val stats : unit -> stats
(** Cumulative engine counters (a private copy). Reset through the
    ["shardexec.stats"] {!Runtime_state} registration. *)

val journal : unit -> event list
(** The journal of the most recent {!run}, oldest first. *)

val partition : n:int -> shards:int -> range list
(** [partition ~n ~shards] splits [\[0, n)] into [min shards n]
    contiguous non-empty ranges whose sizes differ by at most one —
    the deterministic shard descriptors of a run.
    @raise Invalid_argument when [n < 0] or [shards < 1]. *)

val merge_results : merge:('r -> 'r -> 'r) -> (range * 'r) list -> 'r
(** [merge_results ~merge results] sorts [results] by [lo] and folds
    [merge] left-to-right in that fixed order — the only reduction
    the engine ever performs, making the merged value invariant to
    completion order.
    @raise Invalid_argument on an empty list or when the ranges do not
    tile a single contiguous interval. *)

val run :
  ?plan:plan ->
  ?budget:Budget.t ->
  ?on_spawn:(pid:int -> shard:range -> unit) ->
  n:int ->
  compute:(range -> 'r) ->
  merge:('r -> 'r -> 'r) ->
  unit ->
  ('r, Guard.failure) result
(** [run ?plan ?budget ?on_spawn ~n ~compute ~merge ()] computes
    [compute {lo = 0; hi = n}] by sharding. [budget] defaults to the
    ambient one; each shard attempt runs under a fresh
    {!Budget.refresh} of it (escalated per retry), and the budget's
    deadline bounds the whole run. With [plan.shards <= 1],
    [plan.workers <= 1] or [n <= 1] the computation runs sequentially
    in-process under {!Guard.run} — the reference path the sharded
    one is byte-identical to. [on_spawn] is called in the parent after
    every worker fork (chaos tests and benches use it to SIGKILL
    workers mid-shard). Poison isolation reports
    [Error (Solver_error _)] naming the unit. No path leaks a worker:
    every spawned process is reaped before [run] returns. *)
