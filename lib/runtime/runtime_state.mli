(** Registry of top-level mutable solver state, for the abort-safety
    audit.

    Budgeted computations abort at arbitrary tick sites (deadline,
    fuel, chaos injection), so any cache or memo table that outlives a
    single call must be registered here with a [reset] action and,
    ideally, an internal-consistency [validate]. The chaos test suite
    uses the registry as its single choke point: reset everything
    before a seeded run, validate everything after an abort. cqlint
    rule R5 enforces registration for top-level mutable bindings in
    solver directories.

    Registration happens at module initialization
    ([let () = Runtime_state.register ...]) and is not thread-safe —
    like the ambient budget, the registry assumes single-domain use. *)

type kind = [ `Cache | `Config ]
(** [`Cache] state is semantically transparent: resetting it costs
    recomputation, never correctness (memo tables, interning maps,
    counters). [`Config] state carries meaning — the selected numeric
    tier, registered hook lists — and is only cleared by the full
    {!reset_all}. *)

val register :
  name:string -> ?kind:kind -> ?validate:(unit -> bool) ->
  (unit -> unit) -> unit
(** [register ~name ?kind ?validate reset] adds an entry. [name] should
    be ["module.binding"] (e.g. ["cq_sep.chain_cache"]). [kind]
    defaults to [`Cache]. [reset] must restore the state to its
    pristine, just-loaded value; [validate] (default: always true)
    checks internal invariants without mutating anything.
    @raise Invalid_argument on a duplicate [name]. *)

val names : unit -> string list
(** All registered names, sorted. *)

val registered : string -> bool

val reset_all : unit -> unit
(** Reset every registered piece of state — caches and configuration —
    to pristine. Answers computed afterwards must not depend on
    anything computed before. *)

val reset_caches : unit -> unit
(** Reset only the [`Cache]-kind entries. This is the fork-child
    hygiene hook: a freshly forked worker drops every inherited memo
    table (chaos-poisoned or stale parent state can never leak into a
    shard result) while ambient configuration such as the numeric-tier
    selector keeps the value the operator chose. *)

val validate_all : unit -> string list
(** Run every [validate]; returns the (sorted) names that failed —
    [[]] means every registered invariant holds. *)
