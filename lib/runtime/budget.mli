(** Resource budgets: wall-clock deadlines, monotone fuel counters and
    recursion/size limits for the worst-case-intractable solvers.

    Every decision procedure in this library is exponential in the
    worst case (Table 1 of the paper), so production callers wrap them
    in a budget and a {!Guard.run}. Solvers cooperate by calling
    {!tick} inside their hot loops; the installed budget decides when
    to abort by raising {!Exhausted}, which {!Guard.run} converts into
    a structured [Error]. A tick is a single decrement-and-branch on a
    prepaid credit counter; fuel accounting and clock reads happen in
    an amortized slow path at most once per 1024 ticks. *)

(** Why a budgeted computation stopped. Re-exported as
    {!Guard.failure}. *)
type failure =
  | Timeout  (** the wall-clock deadline passed *)
  | Fuel_exhausted of string
      (** the fuel counter reached zero; the payload names the loop
          that consumed the last unit *)
  | Limit_exceeded of string  (** a recursion/size/structural limit *)
  | Solver_error of string
      (** the solver failed for a non-resource reason (invalid
          argument, internal failure) *)

exception Exhausted of failure
(** Raised by {!tick}/{!check_size}/{!check_depth} when the installed
    budget is spent. Catch it via {!Guard.run}, not manually. *)

type t
(** A budget. Mutable: fuel is consumed as the computation runs. *)

val unlimited : t
(** The no-op budget: never exhausts. This is the default ambient
    budget; ticks against it stay on the decrement-and-branch fast
    path. *)

(** [make ?timeout ?fuel ?max_recursion ?max_size ()] builds a budget.
    [timeout] is in seconds from now (the deadline is absolute, so one
    budget bounds the total wall time of everything run under it);
    [fuel] is the number of cooperative ticks allowed.
    @raise Invalid_argument on a negative timeout or [fuel < 1]. *)
val make :
  ?timeout:float ->
  ?fuel:int ->
  ?max_recursion:int ->
  ?max_size:int ->
  unit ->
  t

val refresh : t -> t
(** [refresh b] is a budget with [b]'s deadline and limits but the fuel
    refilled to its initial amount — used by degradation ladders to
    give each fallback rung a fresh fuel slice under the same overall
    deadline. *)

val is_unlimited : t -> bool

val remaining_fuel : t -> int option
(** [None] when fuel is unlimited. *)

val remaining_time : t -> float option
(** Seconds until the deadline (negative when past); [None] without a
    deadline. *)

(** {2 The ambient budget}

    {!Guard.run} installs a budget for the dynamic extent of a solver
    call; the hot loops consume it through {!tick} without any
    plumbing. *)

val install : t -> t
(** [install b] makes [b] the ambient budget and returns the previous
    one (restore it when done — {!Guard.run} does). *)

val installed : unit -> t

val tick : ?what:string -> unit -> unit
(** [tick ~what ()] consumes one unit of ambient fuel and, every 1024
    ticks, checks the wall clock. [what] names the calling loop for the
    {!Fuel_exhausted} payload.
    @raise Exhausted when the budget is spent. *)

val check_size : ?what:string -> int -> unit
(** [check_size ~what n] raises {!Exhausted} with [Limit_exceeded] when
    the ambient budget caps sizes below [n]. *)

val check_depth : ?what:string -> int -> unit
(** [check_depth ~what d] raises {!Exhausted} with [Limit_exceeded]
    when the ambient budget caps recursion below [d]. *)

val pp : Format.formatter -> t -> unit
