(** Resource budgets: wall-clock deadlines, monotone fuel counters and
    recursion/size limits for the worst-case-intractable solvers.

    Every decision procedure in this library is exponential in the
    worst case (Table 1 of the paper), so production callers wrap them
    in a budget and a {!Guard.run}. Solvers cooperate by calling
    {!tick} inside their hot loops; the installed budget decides when
    to abort by raising {!Exhausted}, which {!Guard.run} converts into
    a structured [Error]. A tick is a single decrement-and-branch on a
    prepaid credit counter; fuel accounting and clock reads happen in
    an amortized slow path at most once per 1024 ticks. *)

(** Why a budgeted computation stopped. Re-exported as
    {!Guard.failure}. *)
type failure =
  | Timeout  (** the wall-clock deadline passed *)
  | Fuel_exhausted of string
      (** the fuel counter reached zero; the payload names the loop
          that consumed the last unit *)
  | Limit_exceeded of string  (** a recursion/size/structural limit *)
  | Solver_error of string
      (** the solver failed for a non-resource reason (invalid
          argument, internal failure) *)

exception Exhausted of failure
(** Raised by {!tick}/{!check_size}/{!check_depth} when the installed
    budget is spent. Catch it via {!Guard.run}, not manually. *)

type t
(** A budget. Mutable: fuel is consumed as the computation runs. *)

(** {2 The clock}

    All deadline arithmetic goes through [Clock], never through
    [Unix.gettimeofday] directly. *)
module Clock : sig
  val now : unit -> float
  (** The current time in seconds, clamped to be monotone: a backwards
      wall-clock jump (an NTP step) freezes [now] at the last observed
      time instead of extending or instantly expiring deadlines. *)

  val set_source : (unit -> float) option -> unit
  (** [set_source (Some f)] replaces the wall clock with [f] — the fake
      clock hook that lets timeout paths be tested without sleeping.
      [set_source None] restores the real clock. Either way the
      monotonicity clamp restarts from the new source's first reading.
      Test-only; not for production call sites. *)

  val sleep : float -> unit
  (** [sleep s] blocks for [s] seconds ([s <= 0] is a no-op). All
      runtime delays — retry backoff, breaker cool-downs — go through
      this seam rather than [Unix.sleepf] directly, so they share the
      clock's testability story. *)

  val set_sleeper : (float -> unit) option -> unit
  (** [set_sleeper (Some f)] replaces the real sleep with [f] — the
      hook that lets backoff schedules be asserted on without waiting
      them out. [set_sleeper None] restores the real sleep. Test-only. *)
end

val unlimited : t
(** The no-op budget: never exhausts. This is the default ambient
    budget; ticks against it stay on the decrement-and-branch fast
    path. *)

(** [make ?timeout ?fuel ?max_recursion ?max_size ?chaos ()] builds a
    budget. [timeout] is in seconds from now (the deadline is absolute,
    so one budget bounds the total wall time of everything run under
    it); [fuel] is the number of cooperative ticks allowed.

    [~chaos:(seed, rate)] arms deterministic fault injection: every
    {!tick} against the budget aborts with probability [rate], decided
    by a pseudo-random stream derived from [seed] alone — the same seed
    replays the same abort point. The injected failure is
    [Fuel_exhausted "chaos injection at <loop>"], so chaos aborts flow
    through exactly the code paths a real exhaustion would.
    @raise Invalid_argument on a negative timeout, [fuel < 1], or a
    chaos rate outside [0, 1]. *)
val make :
  ?timeout:float ->
  ?fuel:int ->
  ?max_recursion:int ->
  ?max_size:int ->
  ?chaos:int * float ->
  unit ->
  t

val refresh : t -> t
(** [refresh b] is a budget with [b]'s deadline and limits but the fuel
    refilled to its initial amount — used by degradation ladders to
    give each fallback rung a fresh fuel slice under the same overall
    deadline. A chaos stream, if armed, is shared with [b] (it
    continues rather than replays). *)

val escalate : ?factor:float -> ?extend_deadline:bool -> t -> t
(** [escalate b] is a budget like [b] with its fuel allowance multiplied
    by [factor] (default 4.0, saturating at unlimited) and refilled.
    With [~extend_deadline:true] the original relative timeout is also
    multiplied by [factor] and the deadline re-anchored at now;
    otherwise the absolute deadline is kept. This is the retry policy's
    step: each attempt gets a strictly bigger budget.
    @raise Invalid_argument when [factor < 1]. *)

val is_unlimited : t -> bool

val remaining_fuel : t -> int option
(** [None] when fuel is unlimited. *)

val remaining_time : t -> float option
(** Seconds until the deadline (negative when past); [None] without a
    deadline. *)

(** {2 The ambient budget}

    {!Guard.run} installs a budget for the dynamic extent of a solver
    call; the hot loops consume it through {!tick} without any
    plumbing. *)

val install : t -> t
(** [install b] makes [b] the ambient budget and returns the previous
    one (restore it when done — {!Guard.run} does). *)

val installed : unit -> t

val tick : ?what:string -> unit -> unit
(** [tick ~what ()] consumes one unit of ambient fuel and, every 1024
    ticks, checks the wall clock. [what] names the calling loop for the
    {!Fuel_exhausted} payload.
    @raise Exhausted when the budget is spent. *)

val check_size : ?what:string -> int -> unit
(** [check_size ~what n] raises {!Exhausted} with [Limit_exceeded] when
    the ambient budget caps sizes below [n]. *)

val check_depth : ?what:string -> int -> unit
(** [check_depth ~what d] raises {!Exhausted} with [Limit_exceeded]
    when the ambient budget caps recursion below [d]. *)

val pp : Format.formatter -> t -> unit
