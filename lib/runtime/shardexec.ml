(* Fault-tolerant sharded execution with a deterministic merge.

   The engine is a single-process coordinator over Isolate fork
   workers. All ordering-sensitive work — the shard partition, the
   final reduction — is a pure function of the unit count, never of
   completion order: results are folded strictly in range order by
   [merge_results], so the merged value is byte-identical to the
   sequential computation no matter which workers die or when.

   Failure classification, per worker result:
     - Ok v                  -> the shard is done;
     - Error Timeout         -> the shared absolute deadline passed
                                (either cooperatively inside the
                                worker or by the parent's SIGKILL);
                                retrying under the same deadline
                                cannot help, so the run fails;
     - Error (Limit_exceeded _) -> the "kill class": a SIGKILLed/OOMed/
                                crashed worker, or a cooperative
                                structural limit. Requeued under an
                                escalated budget; at [quarantine_kills]
                                deaths the shard is bisected, so one
                                pathological unit cannot sink the job
                                and is eventually isolated at width
                                one and reported;
     - Error (Fuel_exhausted _) -> clean retry with escalated fuel, up
                                to [max_attempts];
     - Error (Solver_error _)   -> aborts the run (retry cannot help).

   Stragglers: once three shard durations are known, a running shard
   older than max(50ms, 2 * p95) gets a speculative duplicate when a
   worker slot is free and no real work is queued. The first terminal
   result wins; the resolution is journaled before the loser is
   killed and reaped.

   Reaping discipline: every spawned worker is either polled to
   completion (Isolate reaps on that path) or force-killed and
   awaited by [abort_all] — no path out of [run] leaks a child. *)

type range = { lo : int; hi : int }

type plan = {
  shards : int;
  workers : int;
  max_attempts : int;
  quarantine_kills : int;
  speculate : bool;
  grace : float;
}

let plan ?(shards = 4) ?workers ?(max_attempts = 3) ?(quarantine_kills = 2)
    ?(speculate = true) ?(grace = 1.0) () =
  if shards < 1 then invalid_arg "Shardexec.plan: shards must be >= 1";
  let workers = match workers with Some w -> w | None -> min shards 8 in
  if workers < 1 then invalid_arg "Shardexec.plan: workers must be >= 1";
  if max_attempts < 1 then
    invalid_arg "Shardexec.plan: max_attempts must be >= 1";
  if quarantine_kills < 1 then
    invalid_arg "Shardexec.plan: quarantine_kills must be >= 1";
  if grace < 0.0 then invalid_arg "Shardexec.plan: grace must be >= 0";
  { shards; workers; max_attempts; quarantine_kills; speculate; grace }

type event =
  | Dispatched of range * int
  | Completed of range * int
  | Requeued of range * Guard.failure
  | Killed of range * int
  | Bisected of range * range * range
  | Poison of int * Guard.failure
  | Speculated of range
  | Spec_resolved of range * [ `Original | `Duplicate ]

type stats = {
  mutable dispatched : int;
  mutable completed : int;
  mutable requeued : int;
  mutable kills : int;
  mutable bisections : int;
  mutable speculations : int;
  mutable spec_losers : int;
  mutable max_inflight : int;
}

let engine_stats =
  {
    dispatched = 0;
    completed = 0;
    requeued = 0;
    kills = 0;
    bisections = 0;
    speculations = 0;
    spec_losers = 0;
    max_inflight = 0;
  }

let () =
  Runtime_state.register ~name:"shardexec.stats"
    ~validate:(fun () ->
      engine_stats.dispatched >= 0
      && engine_stats.completed >= 0
      && engine_stats.completed <= engine_stats.dispatched
      && engine_stats.kills >= 0
      && engine_stats.spec_losers <= engine_stats.speculations)
    (fun () ->
      engine_stats.dispatched <- 0;
      engine_stats.completed <- 0;
      engine_stats.requeued <- 0;
      engine_stats.kills <- 0;
      engine_stats.bisections <- 0;
      engine_stats.speculations <- 0;
      engine_stats.spec_losers <- 0;
      engine_stats.max_inflight <- 0)

(* Most recent run's journal, newest first internally. *)
let journal_log : event list ref = ref []

let () =
  Runtime_state.register ~name:"shardexec.journal" (fun () ->
      journal_log := [])

let stats () = { engine_stats with dispatched = engine_stats.dispatched }
let journal () = List.rev !journal_log

let partition ~n ~shards =
  if n < 0 then invalid_arg "Shardexec.partition: n must be >= 0";
  if shards < 1 then invalid_arg "Shardexec.partition: shards must be >= 1";
  let k = min shards n in
  if k = 0 then []
  else begin
    let base = n / k and extra = n mod k in
    let rec go i lo acc =
      if i = k then List.rev acc
      else begin
        let width = base + (if i < extra then 1 else 0) in
        go (i + 1) (lo + width) ({ lo; hi = lo + width } :: acc)
      end
    in
    go 0 0 []
  end

let merge_results ~merge results =
  let sorted =
    List.sort (fun (a, _) (b, _) -> Int.compare a.lo b.lo) results
  in
  match sorted with
  | [] -> invalid_arg "Shardexec.merge_results: empty result set"
  | (r0, v0) :: rest ->
      let covered, acc =
        List.fold_left
          (fun (cur, acc) (r, v) ->
            if r.lo <> cur then
              invalid_arg
                (Printf.sprintf
                   "Shardexec.merge_results: ranges do not tile (next shard \
                    starts at %d, expected %d)"
                   r.lo cur);
            (r.hi, merge acc v))
          (r0.hi, v0) rest
      in
      ignore covered;
      acc

(* --- the coordinator -------------------------------------------------- *)

type desc = {
  d_range : range;
  mutable d_attempts : int;  (* dispatches counted against max_attempts *)
  mutable d_kills : int;
  mutable d_boosts : int;  (* budget escalations applied *)
  mutable d_spec : bool;  (* a duplicate exists (or existed) this round *)
  mutable d_settled : bool;  (* a terminal result was classified this round *)
}

let desc range =
  {
    d_range = range;
    d_attempts = 0;
    d_kills = 0;
    d_boosts = 0;
    d_spec = false;
    d_settled = false;
  }

type 'r inflight = {
  i_desc : desc;
  i_worker : 'r Isolate.worker;
  i_started : float;
  i_side : [ `Original | `Duplicate ];
}

let percentile95 durations =
  let sorted = List.sort Float.compare durations in
  let len = List.length sorted in
  let idx = min (len - 1) (int_of_float (ceil (0.95 *. float_of_int len)) - 1) in
  List.nth sorted (max 0 idx)

let run (type r) ?(plan = plan ()) ?budget ?on_spawn ~n
    ~(compute : range -> r) ~(merge : r -> r -> r) () :
    (r, Guard.failure) result =
  if n < 0 then invalid_arg "Shardexec.run: n must be >= 0";
  let base = match budget with Some b -> b | None -> Budget.installed () in
  if n <= 1 || plan.shards <= 1 || plan.workers <= 1 then
    (* The reference path the sharded one is byte-identical to. *)
    Guard.run base (fun () -> compute { lo = 0; hi = n })
  else begin
    journal_log := [];
    let record ev = journal_log := ev :: !journal_log in
    let pending = ref (List.map desc (partition ~n ~shards:plan.shards)) in
    let running : r inflight list ref = ref [] in
    let completed : (range * r) list ref = ref [] in
    let durations = ref [] in
    let failure : Guard.failure option ref = ref None in
    let fail f = if !failure = None then failure := Some f in
    let rec escalated b k =
      if k <= 0 then b else escalated (Budget.escalate b) (k - 1)
    in
    let spawn_for side d =
      (* Fresh fuel per attempt under the caller's absolute deadline,
         escalated once per previous failure of this shard. Bind the
         range out of the mutable descriptor: the worker closure must
         capture plain data only, never parent-side mutable state. *)
      let shard = d.d_range in
      let b = escalated (Budget.refresh base) d.d_boosts in
      let worker =
        (* cqlint: allow R7 — the engine is polymorphic in the shard result; clients owe marshal-safe plain data, the contract stated on [run] in the interface *)
        Isolate.spawn ~budget:b ~grace:plan.grace (fun () -> compute shard)
      in
      (match on_spawn with
      | Some f -> f ~pid:(Isolate.pid worker) ~shard
      | None -> ());
      engine_stats.dispatched <- engine_stats.dispatched + 1;
      (match side with
      | `Original ->
          d.d_attempts <- d.d_attempts + 1;
          record (Dispatched (shard, d.d_attempts))
      | `Duplicate ->
          d.d_spec <- true;
          engine_stats.speculations <- engine_stats.speculations + 1;
          record (Speculated shard));
      running :=
        {
          i_desc = d;
          i_worker = worker;
          i_started = Budget.Clock.now ();
          i_side = side;
        }
        :: !running;
      let inflight = List.length !running in
      if inflight > engine_stats.max_inflight then
        engine_stats.max_inflight <- inflight
    in
    let dispatch () =
      while
        !failure = None
        && List.length !running < plan.workers
        && !pending <> []
      do
        match !pending with
        | [] -> ()
        | d :: rest ->
            pending := rest;
            spawn_for `Original d
      done
    in
    let maybe_speculate () =
      if
        plan.speculate && !failure = None && !pending = []
        && List.length !running < plan.workers
        && List.length !durations >= 3
      then begin
        let limit = Float.max 0.05 (2.0 *. percentile95 !durations) in
        let now = Budget.Clock.now () in
        List.iter
          (fun i ->
            if
              i.i_side = `Original
              && (not i.i_desc.d_spec)
              && now -. i.i_started > limit
              && List.length !running < plan.workers
            then spawn_for `Duplicate i.i_desc)
          !running
      end
    in
    let requeue d f kind =
      d.d_boosts <- d.d_boosts + 1;
      d.d_spec <- false;
      d.d_settled <- false;
      (match kind with
      | `Clean ->
          engine_stats.requeued <- engine_stats.requeued + 1;
          record (Requeued (d.d_range, f))
      | `Kill -> ());
      pending := !pending @ [ d ]
    in
    let bisect d =
      let { lo; hi } = d.d_range in
      let mid = lo + ((hi - lo) / 2) in
      let h1 = desc { lo; hi = mid } and h2 = desc { lo = mid; hi } in
      engine_stats.bisections <- engine_stats.bisections + 1;
      record (Bisected (d.d_range, h1.d_range, h2.d_range));
      pending := h1 :: h2 :: !pending
    in
    let classify i result =
      let d = i.i_desc in
      match result with
      | Ok v ->
          engine_stats.completed <- engine_stats.completed + 1;
          record (Completed (d.d_range, d.d_attempts));
          completed := (d.d_range, v) :: !completed;
          durations := (Budget.Clock.now () -. i.i_started) :: !durations
      | Error Guard.Timeout ->
          (* The shared absolute deadline passed; a retry under the
             same deadline would die instantly. *)
          fail Guard.Timeout
      | Error (Guard.Solver_error _ as f) -> fail f
      | Error (Guard.Limit_exceeded _ as f) ->
          d.d_kills <- d.d_kills + 1;
          engine_stats.kills <- engine_stats.kills + 1;
          record (Killed (d.d_range, d.d_kills));
          if d.d_kills >= plan.quarantine_kills then begin
            if d.d_range.hi - d.d_range.lo > 1 then bisect d
            else begin
              record (Poison (d.d_range.lo, f));
              fail
                (Guard.Solver_error
                   (Printf.sprintf
                      "shardexec: poison unit %d isolated after %d worker \
                       deaths (%s)"
                      d.d_range.lo d.d_kills (Guard.failure_to_string f)))
            end
          end
          else requeue d f `Kill
      | Error (Guard.Fuel_exhausted _ as f) ->
          if d.d_attempts >= plan.max_attempts then fail f
          else requeue d f `Clean
    in
    let handle_terminal i result =
      let d = i.i_desc in
      if d.d_settled then begin
        (* The partner already won this round: this worker is the
           loser, already terminal and reaped by poll. *)
        if d.d_spec then
          engine_stats.spec_losers <- engine_stats.spec_losers + 1
      end
      else begin
        d.d_settled <- true;
        (* First terminal result wins. Journal the resolution before
           killing any still-running partner. *)
        if d.d_spec then begin
          record (Spec_resolved (d.d_range, i.i_side));
          let losers, rest =
            List.partition (fun j -> j.i_desc == d) !running
          in
          running := rest;
          List.iter
            (fun j ->
              engine_stats.spec_losers <- engine_stats.spec_losers + 1;
              Isolate.force_kill j.i_worker;
              ignore (Isolate.await j.i_worker))
            losers
        end;
        classify i result
      end
    in
    let abort_all () =
      List.iter
        (fun i ->
          Isolate.force_kill i.i_worker;
          ignore (Isolate.await i.i_worker))
        !running;
      running := []
    in
    let rec loop () =
      (match Budget.remaining_time base with
      | Some t when t <= 0.0 -> fail Guard.Timeout
      | _ -> ());
      if !failure <> None then abort_all ()
      else begin
        dispatch ();
        maybe_speculate ()
      end;
      if !running = [] then ()
      else begin
        let fds =
          List.filter_map (fun i -> Isolate.poll_fd i.i_worker) !running
        in
        (try ignore (Unix.select fds [] [] 0.05)
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        let terminal, still =
          List.partition_map
            (fun i ->
              match Isolate.poll i.i_worker with
              | Some result -> Either.Left (i, result)
              | None -> Either.Right i)
            !running
        in
        running := still;
        List.iter
          (fun (i, result) ->
            if !failure = None then handle_terminal i result
            else if i.i_desc.d_spec && i.i_desc.d_settled then
              engine_stats.spec_losers <- engine_stats.spec_losers + 1)
          terminal;
        loop ()
      end
    in
    (match loop () with
    | () -> ()
    | exception e ->
        abort_all ();
        raise e);
    match !failure with
    | Some f -> Error f
    | None ->
        (* The descriptors tile [0, n) by construction (partition and
           bisection both preserve coverage); merge in range order. *)
        Ok (merge_results ~merge !completed)
  end
