(** Linear separability of ±1 training collections (Section 2).

    A training collection is a list of examples [(b̄, y)] with
    [b̄ ∈ {1,-1}^n] and [y ∈ {1,-1}]. It is linearly separable when some
    weights [w̄ = (w_0, w_1, ..., w_n)] satisfy
    [Λ_w̄(b̄) = (if Σ w_i·b_i ≥ w_0 then 1 else -1) = y] for every
    example. Deciding this is in PTIME via linear programming (the
    paper cites Khachiyan/Karmarkar); here an exact simplex plays that
    role. *)

type example = { vec : int array;  (** entries in {1, -1} *) label : Labeling.label }

type classifier = { weights : Rat.t array; threshold : Rat.t }
(** [Λ(b̄) = 1 iff Σ weights.(i)·b̄.(i) ≥ threshold]. *)

(** [classify c vec] applies the linear classifier. *)
val classify : classifier -> int array -> Labeling.label

(** [errors c examples] counts misclassified examples. *)
val errors : classifier -> example list -> int

(** [separable examples] returns a separating classifier if one exists.
    Strict separation of the negatives is encoded with a unit margin
    (scale-invariant, hence without loss of generality). The empty
    collection is separable. *)
val separable : example list -> classifier option

(** [is_separable examples] is [separable examples <> None]. *)
val is_separable : example list -> bool

(** [group_by_vector examples] groups the collection by identical
    vectors, in first-seen order: one [(pos, neg, vec)] triple per
    distinct vector with its positive and negative multiplicities.
    Deterministic in the input order alone (no Hashtbl iteration
    order leaks). This is the reduction step shared by the
    consistency precheck and the numeric tier ({!Nsep}). *)
val group_by_vector : example list -> (int * int * int array) list

(** [separable_iff_consistent examples] is the cheap necessary
    condition: no two examples with identical vectors and different
    labels. (Not sufficient in general — see Example 6.2-style gaps —
    but it is the first thing every decision procedure checks.) *)
val separable_iff_consistent : example list -> bool

(** [perceptron ?max_epochs examples] runs the classic perceptron with
    integer weights; converges to a separator whenever the collection
    is separable and [max_epochs] is large enough (heuristic
    otherwise). Returns the classifier and whether it fully separates. *)
val perceptron : ?max_epochs:int -> example list -> classifier * bool

(** [chain_classifier ~labels ~below] builds the explicit classifier of
    the Kimelfeld–Ré construction used by Lemma 5.4 / Theorem 5.8:
    given equivalence classes [E_1 ≼ ... ≼ E_m] in topological order
    (so [below j i] — meaning [E_j ≼ E_i] — implies [j ≤ i]) and the
    class labels, the weights [w_j = label(E_j)·3^{j+1}] with threshold
    [-Σ w_j] classify the vector of any entity of class [E_i]
    (which has [+1] exactly at [{j | below j i}]) as [labels.(i)].
    Exact bignum arithmetic, no LP call. *)
val chain_classifier : labels:Labeling.label array -> below:(int -> int -> bool) -> classifier

(** [chain_vector ~below ~m i] is the ±1 vector of class [E_i] under
    the statistic [(q_{e_1}, ..., q_{e_m})]: [+1] at [j] iff
    [below j i]. *)
val chain_vector : below:(int -> int -> bool) -> m:int -> int -> int array

(** [min_errors_exact ?cap examples] computes the minimum number of
    misclassified examples over all linear classifiers — the
    approximate-separability objective of Section 7. NP-hard
    (Höffgen–Simon–Van Horn), solved by iterative-deepening search over
    discarded examples with a consistency lower bound; [cap] (default
    [List.length examples]) aborts the search above that many errors
    and returns [None]. Returns the optimum and a witnessing
    classifier. *)
val min_errors_exact : ?cap:int -> example list -> (int * classifier) option

(** [min_errors_greedy ?max_epochs examples] is the pocket-perceptron
    heuristic: best classifier seen during perceptron epochs. Returns
    its error count and the classifier (an upper bound on the
    optimum). *)
val min_errors_greedy : ?max_epochs:int -> example list -> int * classifier

(** [consistency_lower_bound examples] is [Σ_g min(pos_g, neg_g)] over
    groups of identical vectors — a lower bound on the minimum error of
    {e any} classifier. *)
val consistency_lower_bound : example list -> int
