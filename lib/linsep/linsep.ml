type example = { vec : int array; label : Labeling.label }
type classifier = { weights : Rat.t array; threshold : Rat.t }

let classify c vec =
  let acc = ref Rat.zero in
  Array.iteri
    (fun i w -> acc := Rat.add !acc (Rat.mul w (Rat.of_int vec.(i))))
    c.weights;
  if Rat.compare !acc c.threshold >= 0 then Labeling.Pos else Labeling.Neg

let errors c examples =
  List.fold_left
    (fun acc ex ->
      if Labeling.label_equal (classify c ex.vec) ex.label then acc
      else acc + 1)
    0 examples

(* LP encoding over variables (w_1..w_n, w0):
   positive example: Σ w_i b_i - w0 ≥ 0
   negative example: Σ w_i b_i - w0 ≤ -1
   The unit margin on negatives makes the strict inequality of Λ
   expressible; any separating weights can be scaled to satisfy it. *)
let separable examples =
  match examples with
  | [] -> Some { weights = [||]; threshold = Rat.zero }
  | ex0 :: _ ->
      let n = Array.length ex0.vec in
      let nvars = n + 1 in
      let rows =
        List.map
          (fun ex ->
            let coeffs =
              Array.init nvars (fun i ->
                  if i < n then Rat.of_int ex.vec.(i) else Rat.minus_one)
            in
            match ex.label with
            | Labeling.Pos -> { Simplex.coeffs; op = Simplex.Ge; rhs = Rat.zero }
            | Labeling.Neg ->
                { Simplex.coeffs; op = Simplex.Le; rhs = Rat.minus_one })
          examples
      in
      (match Simplex.feasible ~nvars ~rows () with
      | Some x ->
          Some
            {
              weights = Array.sub x 0 n;
              threshold = x.(n);
            }
      | None -> None)

let is_separable examples = separable examples <> None

module Vec_key = struct
  let key vec = Array.to_list vec
end

let group_by_vector examples =
  (* First-seen key order, not Hashtbl.fold order: the groups feed the
     LP builder, so their order must be a function of the input alone. *)
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun ex ->
      let key = Vec_key.key ex.vec in
      let pos, neg, vec =
        match Hashtbl.find_opt tbl key with
        | Some t -> t
        | None ->
            order := key :: !order;
            (0, 0, ex.vec)
      in
      let pos, neg =
        match ex.label with
        | Labeling.Pos -> (pos + 1, neg)
        | Labeling.Neg -> (pos, neg + 1)
      in
      Hashtbl.replace tbl key (pos, neg, vec))
    examples;
  List.rev_map (fun key -> Hashtbl.find tbl key) !order

let separable_iff_consistent examples =
  List.for_all (fun (pos, neg, _) -> pos = 0 || neg = 0) (group_by_vector examples)

let consistency_lower_bound examples =
  List.fold_left
    (fun acc (pos, neg, _) -> acc + min pos neg)
    0 (group_by_vector examples)

(* --- perceptron ----------------------------------------------------- *)

let perceptron ?(max_epochs = 1000) examples =
  match examples with
  | [] -> ({ weights = [||]; threshold = Rat.zero }, true)
  | ex0 :: _ ->
      let n = Array.length ex0.vec in
      (* Integer weights; bias plays the role of -w0. Prediction
         convention matches [classify]: positive iff w·b + bias ≥ 0. *)
      let w = Array.make n 0 in
      let bias = ref 0 in
      let as_classifier () =
        {
          weights = Array.map Rat.of_int w;
          threshold = Rat.of_int (- !bias);
        }
      in
      let predict vec =
        let s = ref !bias in
        (* cqlint: allow R1 — dot product bounded by the feature dimension *)
        for i = 0 to n - 1 do
          s := !s + (w.(i) * vec.(i))
        done;
        if !s >= 0 then Labeling.Pos else Labeling.Neg
      in
      let rec epochs e =
        Budget.tick ~what:"linsep: perceptron epoch" ();
        if e >= max_epochs then (as_classifier (), false)
        else begin
          let mistakes = ref 0 in
          List.iter
            (fun ex ->
              if not (Labeling.label_equal (predict ex.vec) ex.label) then begin
                incr mistakes;
                let dir = Labeling.label_sign ex.label in
                (* cqlint: allow R1 — update bounded by the feature dimension *)
                for i = 0 to n - 1 do
                  w.(i) <- w.(i) + (dir * ex.vec.(i))
                done;
                bias := !bias + dir
              end)
            examples;
          if !mistakes = 0 then (as_classifier (), true) else epochs (e + 1)
        end
      in
      epochs 0

(* --- the explicit chain classifier (Lemma 5.4 / Theorem 5.8) -------- *)

let chain_vector ~below ~m i =
  Array.init m (fun j -> if below j i then 1 else -1)

let chain_classifier ~labels ~below =
  let m = Array.length labels in
  (* The weights depend only on the class labels; [below] is taken to
     validate that the caller's order is topological (below j i ⟹
     j ≤ i), which the geometric weighting relies on. *)
  for i = 0 to m - 1 do
    for j = i + 1 to m - 1 do
      Budget.tick ~what:"linsep: chain order validation" ();
      if below j i then
        invalid_arg "Linsep.chain_classifier: order is not topological"
    done
  done;
  let weights =
    Array.init m (fun j ->
        let base = Bigint.pow (Bigint.of_int 3) (j + 1) in
        let signed =
          if Labeling.label_equal labels.(j) Labeling.Pos then base
          else Bigint.neg base
        in
        Rat.of_bigint signed)
  in
  let total = Array.fold_left Rat.add Rat.zero weights in
  { weights; threshold = Rat.neg total }

(* --- approximate separation ----------------------------------------- *)

(* Iterative deepening on the number of discarded examples, searching
   over vector groups. Discarding from a group means accepting that
   many errors there; within a group only the counts matter, so the
   branching is per group: keep it positive (err += neg), keep it
   negative (err += pos), or — when splitting is pointless — both sides
   get counted anyway. A kept group contributes one representative
   example with the chosen label. *)
let min_errors_exact ?cap examples =
  let cap = match cap with Some c -> c | None -> List.length examples in
  let groups = Array.of_list (group_by_vector examples) in
  let ngroups = Array.length groups in
  let lower = consistency_lower_bound examples in
  let rec try_budget budget =
    Budget.tick ~what:"linsep: error budget search" ();
    if budget > cap then None
    else begin
      (* DFS assigning each group a forced side; prune on budget. *)
      let rec assign i err chosen =
        Budget.tick ~what:"linsep: group assignment search" ();
        if err > budget then None
        else if i >= ngroups then begin
          match separable chosen with
          | Some c -> Some (err, c)
          | None -> None
        end
        else begin
          let pos, neg, vec = groups.(i) in
          let keep_pos () =
            if pos > 0 || neg > 0 then
              assign (i + 1) (err + neg)
                ({ vec; label = Labeling.Pos } :: chosen)
            else assign (i + 1) err chosen
          in
          let keep_neg () =
            assign (i + 1) (err + pos) ({ vec; label = Labeling.Neg } :: chosen)
          in
          (* Try the cheaper side first. *)
          let first, second =
            if neg <= pos then (keep_pos, keep_neg) else (keep_neg, keep_pos)
          in
          match first () with Some r -> Some r | None -> second ()
        end
      in
      match assign 0 0 [] with
      | Some r -> Some r
      | None -> try_budget (budget + 1)
    end
  in
  try_budget lower

let min_errors_greedy ?(max_epochs = 200) examples =
  match examples with
  | [] -> (0, { weights = [||]; threshold = Rat.zero })
  | ex0 :: _ ->
      let n = Array.length ex0.vec in
      let w = Array.make n 0 in
      let bias = ref 0 in
      let classifier_of w bias =
        { weights = Array.map Rat.of_int w; threshold = Rat.of_int (-bias) }
      in
      let best = ref (errors (classifier_of w !bias) examples) in
      let best_c = ref (classifier_of w !bias) in
      let predict vec =
        let s = ref !bias in
        (* cqlint: allow R1 — dot product bounded by the feature dimension *)
        for i = 0 to n - 1 do
          s := !s + (w.(i) * vec.(i))
        done;
        if !s >= 0 then Labeling.Pos else Labeling.Neg
      in
      (try
         for _e = 1 to max_epochs do
           Budget.tick ~what:"linsep: perceptron epoch" ();
           let mistakes = ref 0 in
           List.iter
             (fun ex ->
               if not (Labeling.label_equal (predict ex.vec) ex.label)
               then begin
                 incr mistakes;
                 let dir = Labeling.label_sign ex.label in
                 (* cqlint: allow R1 — update bounded by the feature dimension *)
                 for i = 0 to n - 1 do
                   w.(i) <- w.(i) + (dir * ex.vec.(i))
                 done;
                 bias := !bias + dir;
                 let c = classifier_of (Array.copy w) !bias in
                 let e = errors c examples in
                 if e < !best then begin
                   best := e;
                   best_c := c
                 end
               end)
             examples;
           if !mistakes = 0 then raise Exit
         done
       with Exit -> ());
      (!best, !best_c)
