(** Numeric-first linear separation with an exact-certification spine.

    Fast float solvers ({!Cg}, {!Fsimplex}) produce candidate answers;
    {!Certify} re-derives each claim in exact rational arithmetic; the
    exact {!Linsep.separable} is the escalation of last resort. The
    module invariant: a [Sep]/[Unsep] verdict is only ever returned
    with an exact proof behind it — float arithmetic decides how fast
    and whether to escalate, never what the answer is.

    Escalation is deterministic: the float tier is abandoned when the
    simplex conditioning guard ({!Fsimplex.well_conditioned}), the
    margin-width guard, or an exact certification fails — all
    functions of the input alone. *)

type tier = Exact_only | Numeric

type provenance =
  | Certified_cg
      (** CG logistic candidate, certified by {!Certify.hyperplane} *)
  | Certified_simplex
      (** float simplex candidate (point or Farkas rows), certified *)
  | Certified_precheck
      (** answered by the exact consistency/triviality precheck *)
  | Exact_solve of string
      (** the exact simplex ran; the payload says why (tier choice or
          the numeric-tier failure that forced escalation) *)
  | Uncertified of string
      (** numeric tier failed and escalation was disabled *)

type verdict =
  | Sep of Linsep.classifier  (** exact separating classifier *)
  | Unsep
  | Unknown of string  (** only reachable with [~escalate:false] *)

type answer = { verdict : verdict; provenance : provenance }

(** Monotone counters over all decisions since the last
    {!Runtime_state} reset (registered as ["nsep.stats"]). Increments
    are abort-atomic per decision: a chaos abort can lose a decision,
    never tear one. *)
type stats = {
  decided : int;
  certified_cg : int;
  certified_simplex : int;
  certified_precheck : int;
  exact_solves : int;
  escalations : int;
      (** exact solves entered from a failed numeric tier (subset of
          [exact_solves]) *)
  uncertified : int;
}

(** Snapshot of the counters. *)
val stats : unit -> stats

(** Ambient default tier (initially [Numeric]; registered as
    ["nsep.tier"]). The CLI's [--exact-only] uses {!set_tier}. *)
val set_tier : tier -> unit

val current_tier : unit -> tier

(** [decide ?tier ?escalate examples] decides linear separability.
    [tier] defaults to the ambient tier. With [escalate] (default
    [true]) a failed numeric tier falls back to the exact solver and
    [Unknown] is unreachable; with [~escalate:false] the failure
    surfaces as [Unknown] with the guard/certification reason. *)
val decide : ?tier:tier -> ?escalate:bool -> Linsep.example list -> answer

(** [decide_b ?budget ?tier ?escalate examples] is {!decide} under
    {!Guard.run} (default: the ambient budget). *)
val decide_b :
  ?budget:Budget.t ->
  ?tier:tier ->
  ?escalate:bool ->
  Linsep.example list ->
  (answer, Guard.failure) result

(** [decide_with_fallback ?budget ?runner ?tier examples] is the
    graceful-degradation ladder in the style of
    [Cq_sep.decide_with_fallback]: the numeric rung runs with
    escalation off, and on [Unknown] or a resource failure the exact
    rung runs under fresh fuel ({!Budget.refresh}) with the same
    deadline. [runner] (default {!Guard.runner}) decides how each rung
    executes — in-process, isolated, or retrying. *)
val decide_with_fallback :
  ?budget:Budget.t ->
  ?runner:Guard.runner ->
  ?tier:tier ->
  Linsep.example list ->
  (answer, Guard.failure) result

(** [separable examples] is a drop-in for {!Linsep.separable} routed
    through {!decide} (ambient tier, escalation on): same
    [classifier option] contract, same exact guarantees, numeric
    speed when the tier allows. *)
val separable : Linsep.example list -> Linsep.classifier option

(** [is_separable examples] is [separable examples <> None]. *)
val is_separable : Linsep.example list -> bool
