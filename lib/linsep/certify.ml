(* Exact certification of numeric separation answers.

   The float tier (Cg, Fsimplex) only ever produces *candidates*:
   a separating hyperplane, or a Farkas row combination claiming none
   exists. This module re-derives each claim in exact rational
   arithmetic, so that a verdict leaves the pipeline only with a proof
   attached:

   - [hyperplane] lifts the float weights through {!Rat.of_float}
     (exact on every finite double), replays every example's margin,
     and re-derives the threshold exactly. A [Certified] classifier is
     a real separator — not "probably separates", but checked on each
     example with bignum arithmetic.

   - [farkas] does not even trust the float multipliers' values, only
     their *support*: it reconstructs the certificate from scratch as
     the exact nullspace of the supported constraint columns, then
     checks the Farkas sign conditions. Round-off in the multipliers
     therefore cannot smuggle in a wrong UNSAT — at worst the
     reconstruction fails and the caller escalates to the exact
     solver. *)

type 'a verdict =
  | Certified of 'a
  | Refuted of string  (* the claim is exactly false as stated *)
  | Inconclusive of string  (* could not decide either way; escalate *)

let verdict_label = function
  | Certified _ -> "certified"
  | Refuted _ -> "refuted"
  | Inconclusive _ -> "inconclusive"

(* --- separating-hyperplane certificates ----------------------------- *)

(* The float solvers hand over a weight direction whose threshold is
   polluted by the same round-off as everything else. But the
   threshold is a free normalization: the direction separates iff the
   largest exact negative margin lies strictly below the smallest
   exact positive margin, and then ANY value in between is a valid
   threshold. So certification recomputes the optimal threshold
   exactly instead of trusting (or even taking) the solver's — a
   candidate within round-off of a true separator still certifies. *)
let hyperplane ~weights examples =
  match
    try Ok (Array.map Rat.of_float weights)
    with Invalid_argument msg -> Error msg
  with
  | Error msg -> Inconclusive ("non-finite candidate: " ^ msg)
  | Ok w -> (
      let n = Array.length w in
      let margin vec =
        let acc = ref Rat.zero in
        for i = 0 to n - 1 do
          Budget.tick ~what:"certify: margin term" ();
          acc := Rat.add !acc (Rat.mul w.(i) (Rat.of_int vec.(i)))
        done;
        !acc
      in
      let min_pos = ref None in
      let max_neg = ref None in
      List.iter
        (fun ex ->
          Budget.tick ~what:"certify: example margin" ();
          if Array.length ex.Linsep.vec <> n then
            invalid_arg "Certify.hyperplane: dimension mismatch";
          let m = margin ex.Linsep.vec in
          match ex.Linsep.label with
          | Labeling.Pos ->
              min_pos :=
                Some
                  (match !min_pos with None -> m | Some p -> Rat.min p m)
          | Labeling.Neg ->
              max_neg :=
                Some
                  (match !max_neg with None -> m | Some q -> Rat.max q m))
        examples;
      let certified threshold = Certified { Linsep.weights = w; threshold } in
      match (!min_pos, !max_neg) with
      | None, None -> certified Rat.zero
      | Some p, None -> certified p (* p >= p: all positives pass *)
      | None, Some q -> certified (Rat.add q Rat.one) (* q < q + 1 *)
      | Some p, Some q ->
          if Rat.compare q p < 0 then
            (* Midpoint: q < (q+p)/2 < p, so positives clear it
               non-strictly and negatives strictly. *)
            certified (Rat.div (Rat.add p q) (Rat.of_int 2))
          else
            Refuted
              "no threshold separates: a negative margin reaches the \
               smallest positive margin")

let hyperplane_b ?budget ~weights examples =
  Guard.run
    (match budget with Some b -> b | None -> Budget.installed ())
    (fun () -> hyperplane ~weights examples)

(* --- Farkas (infeasibility) certificates ----------------------------- *)

(* Reduced row echelon form in place; returns the pivot (row, col)
   list in column order. *)
let rref m nrows ncols =
  let pivots = ref [] in
  let r = ref 0 in
  for c = 0 to ncols - 1 do
    Budget.tick ~what:"certify: rref column" ();
    if !r < nrows then begin
      (* Find a row at or below !r with a nonzero entry in column c. *)
      let piv = ref (-1) in
      (try
         for i = !r to nrows - 1 do
           Budget.tick ~what:"certify: pivot search" ();
           if not (Rat.is_zero m.(i).(c)) then begin
             piv := i;
             raise Exit
           end
         done
       with Exit -> ());
      if !piv >= 0 then begin
        let tmp = m.(!r) in
        m.(!r) <- m.(!piv);
        m.(!piv) <- tmp;
        let inv = Rat.inv m.(!r).(c) in
        for j = c to ncols - 1 do
          Budget.tick ~what:"certify: row normalization" ();
          m.(!r).(j) <- Rat.mul inv m.(!r).(j)
        done;
        for i = 0 to nrows - 1 do
          Budget.tick ~what:"certify: row elimination" ();
          if i <> !r && not (Rat.is_zero m.(i).(c)) then begin
            let f = m.(i).(c) in
            for j = c to ncols - 1 do
              Budget.tick ~what:"certify: entry elimination" ();
              m.(i).(j) <- Rat.sub m.(i).(j) (Rat.mul f m.(!r).(j))
            done
          end
        done;
        pivots := (!r, c) :: !pivots;
        incr r
      end
    end
  done;
  List.rev !pivots

(* Exact feasibility of the subsystem picked out by [support]:
   infeasibility of any subsystem is inherited by the whole system, so
   an exact-infeasible support is a full certificate. The subsystem is
   typically near the Helly bound (nvars + 1 rows), orders of
   magnitude smaller than the full collection. *)
let subsystem_infeasible ~n support examples =
  let nvars = n + 1 in
  let rows =
    Array.to_list
      (Array.map
         (fun i ->
           Budget.tick ~what:"certify: subsystem row" ();
           let ex = examples.(i) in
           let coeffs =
             Array.init nvars (fun d ->
                 if d < n then Rat.of_int ex.Linsep.vec.(d) else Rat.minus_one)
           in
           match ex.Linsep.label with
           | Labeling.Pos -> { Simplex.coeffs; op = Simplex.Ge; rhs = Rat.zero }
           | Labeling.Neg ->
               { Simplex.coeffs; op = Simplex.Le; rhs = Rat.minus_one })
         support)
  in
  match Simplex.feasible ~nvars ~rows () with
  | None -> Certified ()
  | Some _ -> Inconclusive "support subsystem is exactly feasible"

let farkas ~mu examples =
  let examples = Array.of_list examples in
  let m = Array.length examples in
  if Array.length mu <> m then
    invalid_arg "Certify.farkas: one multiplier per example required";
  if m = 0 then Inconclusive "empty system cannot be infeasible"
  else begin
    let n = Array.length examples.(0).Linsep.vec in
    Array.iter
      (fun ex ->
        if Array.length ex.Linsep.vec <> n then
          invalid_arg "Certify.farkas: dimension mismatch")
      examples;
    let nvars = n + 1 in
    (* Support of the float candidate, relative to its largest entry.
       Only the support is trusted; the multiplier values are
       recomputed exactly below. *)
    let max_mu = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0 mu in
    if max_mu = 0.0 || not (Float.is_finite max_mu) then
      Inconclusive "degenerate multiplier candidate"
    else begin
      let support = ref [] in
      for i = m - 1 downto 0 do
        Budget.tick ~what:"certify: support scan" ();
        if Float.abs mu.(i) > 1e-8 *. max_mu then support := i :: !support
      done;
      let support = Array.of_list !support in
      let k = Array.length support in
      (* Constraint row i has coefficients a_i = (vec_i, -1) over
         (w_1..w_n, w0). A certificate needs λ with Σ λ_i·a_i = 0:
         λ lives in the nullspace of the nvars×k matrix whose columns
         are the supported a_i. *)
      let mat =
        Array.init nvars (fun d ->
            Array.init k (fun j ->
                Budget.tick ~what:"certify: matrix build" ();
                let ex = examples.(support.(j)) in
                if d < n then Rat.of_int ex.Linsep.vec.(d) else Rat.minus_one))
      in
      let pivots = rref mat nvars k in
      let rank = List.length pivots in
      let reconstructed =
        if k - rank <> 1 then
          Inconclusive
            (Printf.sprintf "support nullity %d (need exactly 1)" (k - rank))
        else begin
        let pivot_cols = List.map snd pivots in
        let free =
          let f = ref (-1) in
          for j = k - 1 downto 0 do
            Budget.tick ~what:"certify: free column scan" ();
            if not (List.mem j pivot_cols) then f := j
          done;
          !f
        in
        let lambda = Array.make k Rat.zero in
        lambda.(free) <- Rat.one;
        List.iter
          (fun (r, c) ->
            Budget.tick ~what:"certify: back substitution" ();
            lambda.(c) <- Rat.neg mat.(r).(free))
          pivots;
        (* Orient by Σ λ_i·b_i > 0 (rhs: 0 for Ge/positive rows, -1
           for Le/negative rows). *)
        let lam_b = ref Rat.zero in
        for j = 0 to k - 1 do
          Budget.tick ~what:"certify: rhs combination" ();
          match examples.(support.(j)).Linsep.label with
          | Labeling.Pos -> ()
          | Labeling.Neg ->
              lam_b := Rat.add !lam_b (Rat.neg lambda.(j))
        done;
        if Rat.is_zero !lam_b then
          Inconclusive "certificate combination has zero right-hand side"
        else begin
          let lambda =
            if Rat.sign !lam_b > 0 then lambda else Array.map Rat.neg lambda
          in
          (* Sign conditions: λ ≥ 0 on Ge rows (positive examples),
             λ ≤ 0 on Le rows (negative examples). *)
          let ok = ref true in
          for j = 0 to k - 1 do
            Budget.tick ~what:"certify: sign check" ();
            let s = Rat.sign lambda.(j) in
            match examples.(support.(j)).Linsep.label with
            | Labeling.Pos -> if s < 0 then ok := false
            | Labeling.Neg -> if s > 0 then ok := false
          done;
          if !ok then Certified ()
          else Refuted "reconstructed combination violates Farkas signs"
        end
      end
      in
      match reconstructed with
      | Certified () -> Certified ()
      | Refuted _ | Inconclusive _ ->
          (* Slow path: the cheap reconstruction failed (support too
             degenerate for a one-dimensional nullspace, usually).
             By Helly, an infeasible system over nvars variables has an
             infeasible subsystem of at most nvars + 1 rows, and the
             rows with the largest multipliers are the likeliest
             members. Exact-solve growing prefixes of the support in
             magnitude order: any exactly-infeasible prefix is a full
             proof at a fraction of a whole-system escalation. *)
          let by_magnitude = Array.copy support in
          Array.sort
            (fun i j ->
              match Float.compare (Float.abs mu.(j)) (Float.abs mu.(i)) with
              | 0 -> Int.compare i j
              | c -> c)
            by_magnitude;
          let cap = Stdlib.min (m - 1) k in
          let rec prefixes size last =
            Budget.tick ~what:"certify: subsystem prefix" ();
            if size > cap then last
            else begin
              let sub = Array.sub by_magnitude 0 size in
              match subsystem_infeasible ~n sub examples with
              | Certified () -> Certified ()
              | (Refuted _ | Inconclusive _) as v ->
                  if size = cap then v else prefixes (Stdlib.min cap (2 * size)) v
            end
          in
          prefixes (Stdlib.min cap (nvars + 1))
            (Inconclusive "empty support prefix")
    end
  end

let farkas_b ?budget ~mu examples =
  Guard.run
    (match budget with Some b -> b | None -> Budget.installed ())
    (fun () -> farkas ~mu examples)
