(** Exact certification of numeric separation answers.

    The float tier produces candidates; this module turns them into
    proofs, or declines. Nothing here ever trusts a float comparison:
    candidates cross into exact arithmetic through {!Rat.of_float}
    (exact on every finite double) and are re-derived from scratch.

    The three-way {!verdict} is the contract the graceful-degradation
    ladder is built on: [Certified] answers are final; [Refuted] and
    [Inconclusive] both send the caller to the exact solver, the
    difference being only diagnostic (the claim was exactly false
    vs. undecidable from the candidate). *)

type 'a verdict =
  | Certified of 'a
  | Refuted of string  (** the claim is exactly false as stated *)
  | Inconclusive of string  (** could not decide either way; escalate *)

val verdict_label : 'a verdict -> string

(** [hyperplane ~weights examples] checks whether the float weight
    direction separates, in exact arithmetic: every margin
    [Σ weights.(i)·b̄.(i)] is recomputed as an exact rational, and the
    direction certifies iff the largest negative-example margin is
    strictly below the smallest positive-example margin. The threshold
    is {e not} taken from the caller — it is a free normalization that
    float solvers get wrong by round-off, so [Certified c] carries the
    exact midpoint threshold instead. [Inconclusive] only on
    non-finite candidate entries.
    @raise Invalid_argument on an example/weights dimension mismatch. *)
val hyperplane :
  weights:float array ->
  Linsep.example list ->
  Linsep.classifier verdict

val hyperplane_b :
  ?budget:Budget.t ->
  weights:float array ->
  Linsep.example list ->
  (Linsep.classifier verdict, Guard.failure) result

(** [farkas ~mu examples] certifies an infeasibility claim for the
    separation system (positive rows [(b̄,-1)·x ≥ 0], negative rows
    [(b̄,-1)·x ≤ -1]). Only the {e support} of the float multipliers
    [mu] (one per example, in example order) is used: the certificate
    is reconstructed as the exact one-dimensional nullspace of the
    supported constraint columns, oriented to [Σ λ·rhs > 0], and
    checked against the Farkas sign conditions ([λ ≥ 0] on positive
    rows, [λ ≤ 0] on negative rows). [Certified ()] therefore proves
    the collection is not separable; a numerically damaged candidate
    yields [Inconclusive] (wrong nullity, zero combination) or
    [Refuted] (sign violation), never a wrong proof.
    @raise Invalid_argument when [mu] and [examples] disagree in
    length, or on a dimension mismatch. *)
val farkas : mu:float array -> Linsep.example list -> unit verdict

val farkas_b :
  ?budget:Budget.t ->
  mu:float array ->
  Linsep.example list ->
  (unit verdict, Guard.failure) result
