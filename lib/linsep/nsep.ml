(* Numeric-first linear separation with an exact-certification spine.

   The pipeline per decision:

     precheck (exact, cheap)
       └─ consistency + trivial shapes, answered with exact proofs
     CG logistic fit (float)            ── candidate hyperplane
       └─ float margin screen ─ Certify.hyperplane (exact)
     float simplex (float)              ── candidate point / Farkas rows
       └─ conditioning + margin guards ─ Certify.hyperplane / .farkas
     exact simplex (Linsep.separable)   ── escalation of last resort

   The invariant the whole module is built around: a [Sep]/[Unsep]
   verdict is returned only with an exact proof in hand — either a
   Certify verdict or the exact solver's own answer. Float arithmetic
   decides *how fast* we get there and *whether we escalate*, never
   *what* the answer is. With [~escalate:false] the exact re-solve is
   withheld and a failed certification surfaces as [Unknown] instead —
   that is what the ladder rung and the [--numeric-only] CLI path use. *)

type tier = Exact_only | Numeric

(* Ambient default tier; the CLI's --exact-only flips it. Registered so
   chaos runs restore the default between seeds. *)
let ambient_tier = ref Numeric

type provenance =
  | Certified_cg  (* CG candidate, exact hyperplane certificate *)
  | Certified_simplex  (* float simplex candidate, exact certificate *)
  | Certified_precheck  (* answered by the exact consistency precheck *)
  | Exact_solve of string  (* exact simplex ran; the reason why *)
  | Uncertified of string  (* numeric failed and escalation was off *)

type verdict =
  | Sep of Linsep.classifier
  | Unsep
  | Unknown of string  (* only with [~escalate:false] *)

type answer = { verdict : verdict; provenance : provenance }

type stats = {
  decided : int;
  certified_cg : int;
  certified_simplex : int;
  certified_precheck : int;
  exact_solves : int;
  escalations : int;  (* exact solves entered from a failed numeric tier *)
  uncertified : int;
}

(* Mutable counters behind the immutable snapshot. All increments for
   one decision happen adjacently with no tick in between, so an abort
   can lose a whole decision but never tear one: the validate below
   holds at every tick site. *)
let s_decided = ref 0
let s_cg = ref 0
let s_simplex = ref 0
let s_precheck = ref 0
let s_exact = ref 0
let s_escalations = ref 0
let s_uncertified = ref 0

let () =
  Runtime_state.register ~name:"nsep.tier" ~kind:`Config (fun () ->
      ambient_tier := Numeric)

let () =
  Runtime_state.register ~name:"nsep.stats"
    ~validate:(fun () ->
      !s_decided >= 0 && !s_escalations >= 0
      && !s_escalations <= !s_exact
      && !s_decided = !s_cg + !s_simplex + !s_precheck + !s_exact + !s_uncertified)
    (fun () ->
      s_decided := 0;
      s_cg := 0;
      s_simplex := 0;
      s_precheck := 0;
      s_exact := 0;
      s_escalations := 0;
      s_uncertified := 0)

let stats () =
  {
    decided = !s_decided;
    certified_cg = !s_cg;
    certified_simplex = !s_simplex;
    certified_precheck = !s_precheck;
    exact_solves = !s_exact;
    escalations = !s_escalations;
    uncertified = !s_uncertified;
  }

let bump ?(escalated = false) prov =
  incr s_decided;
  (match prov with
  | Certified_cg -> incr s_cg
  | Certified_simplex -> incr s_simplex
  | Certified_precheck -> incr s_precheck
  | Exact_solve _ -> incr s_exact
  | Uncertified _ -> incr s_uncertified);
  if escalated then incr s_escalations

let set_tier t = ambient_tier := t
let current_tier () = !ambient_tier

(* Deterministic escalation guards for the float tier. *)
let min_margin_width = 1e-6

let float_margin_gap ~weights groups =
  (* Separation gap of the weight direction alone: smallest positive
     margin minus largest negative margin. The threshold is left out
     on purpose — Certify.hyperplane re-derives it exactly, so only
     the direction's gap matters. A non-positive gap means no
     threshold can work; a tiny gap means certification would hinge
     on round-off-sized differences, which the width guard treats as
     an escalation signal. One-sided inputs read as [infinity]. *)
  let d = Array.length weights in
  let min_pos = ref infinity in
  let max_neg = ref neg_infinity in
  List.iter
    (fun (pos, _neg, vec) ->
      Budget.tick ~what:"nsep: margin screen" ();
      let m = ref 0.0 in
      (* cqlint: allow R1 — dot product bounded by the feature dimension *)
      for j = 0 to d - 1 do
        m := !m +. (weights.(j) *. float_of_int vec.(j))
      done;
      if pos > 0 then min_pos := Float.min !min_pos !m
      else max_neg := Float.max !max_neg !m)
    groups;
  !min_pos -. !max_neg

let reduced_examples groups =
  List.map
    (fun (pos, _neg, vec) ->
      Budget.tick ~what:"nsep: group representative" ();
      {
        Linsep.vec;
        label = (if pos > 0 then Labeling.Pos else Labeling.Neg);
      })
    groups

(* The float tier proper: try CG then the float simplex on the reduced
   (consistent, deduplicated) examples; return a certified verdict or
   the reason certification could not finish. *)
let numeric_attempt ~n groups reduced =
  let xs =
    Array.of_list
      (List.map
         (fun ex ->
           Budget.tick ~what:"nsep: float row" ();
           Array.map float_of_int ex.Linsep.vec)
         reduced)
  in
  let ys =
    Array.of_list
      (List.map
         (fun ex ->
           match ex.Linsep.label with
           | Labeling.Pos -> 1.0
           | Labeling.Neg -> -1.0)
         reduced)
  in
  let cg_config = { Cg.default_config with max_iters = 60; l2 = 1e-4 } in
  let cg_verdict =
    let f = Cg.fit ~config:cg_config ~xs ~ys () in
    if float_margin_gap ~weights:f.Cg.weights groups <= 0.0 then
      Certify.Inconclusive "cg: candidate does not separate in float"
    else Certify.hyperplane ~weights:f.Cg.weights reduced
  in
  match cg_verdict with
  | Certify.Certified c -> Ok (Sep c, Certified_cg)
  | Certify.Refuted _ | Certify.Inconclusive _ -> begin
      (* Same LP encoding as the exact solver, in floats. *)
      let nvars = n + 1 in
      let rows =
        List.map
          (fun ex ->
            Budget.tick ~what:"nsep: lp row" ();
            let coeffs =
              Array.init nvars (fun i ->
                  if i < n then float_of_int ex.Linsep.vec.(i) else -1.0)
            in
            match ex.Linsep.label with
            | Labeling.Pos -> { Fsimplex.coeffs; op = Simplex.Ge; rhs = 0.0 }
            | Labeling.Neg -> { Fsimplex.coeffs; op = Simplex.Le; rhs = -1.0 })
          reduced
      in
      match Fsimplex.feasible ~nvars ~rows () with
      | Fsimplex.Feasible (x, q) ->
          if not (Fsimplex.well_conditioned q) then
            Error "fsimplex: conditioning guard tripped"
          else begin
            let weights = Array.sub x 0 n in
            if float_margin_gap ~weights groups < min_margin_width then
              Error "fsimplex: margin-width guard tripped"
            else
              match Certify.hyperplane ~weights reduced with
              | Certify.Certified c -> Ok (Sep c, Certified_simplex)
              | (Certify.Refuted _ | Certify.Inconclusive _) as v ->
                  Error
                    ("fsimplex point not certified: "
                    ^ Certify.verdict_label v)
          end
      | Fsimplex.Infeasible (mu, q) ->
          if not (Fsimplex.well_conditioned q) then
            Error "fsimplex: conditioning guard tripped"
          else begin
            match Certify.farkas ~mu reduced with
            | Certify.Certified () -> Ok (Unsep, Certified_simplex)
            | (Certify.Refuted _ | Certify.Inconclusive _) as v ->
                Error
                  ("fsimplex farkas not certified: " ^ Certify.verdict_label v)
          end
    end

let exact_solve reason ~escalated reduced =
  match Linsep.separable reduced with
  | Some c ->
      bump ~escalated (Exact_solve reason);
      { verdict = Sep c; provenance = Exact_solve reason }
  | None ->
      bump ~escalated (Exact_solve reason);
      { verdict = Unsep; provenance = Exact_solve reason }

let decide ?tier ?(escalate = true) examples =
  let tier = match tier with Some t -> t | None -> !ambient_tier in
  match examples with
  | [] ->
      bump Certified_precheck;
      {
        verdict = Sep { Linsep.weights = [||]; threshold = Rat.zero };
        provenance = Certified_precheck;
      }
  | ex0 :: _ -> begin
      let n = Array.length ex0.Linsep.vec in
      let groups = Linsep.group_by_vector examples in
      if List.exists (fun (pos, neg, _) -> pos > 0 && neg > 0) groups then begin
        (* Two identical vectors with opposite labels: exactly
           inseparable, no solver needed. *)
        bump Certified_precheck;
        { verdict = Unsep; provenance = Certified_precheck }
      end
      else begin
        let reduced = reduced_examples groups in
        let all_pos = List.for_all (fun (_, neg, _) -> neg = 0) groups in
        let all_neg = List.for_all (fun (pos, _, _) -> pos = 0) groups in
        if all_pos || all_neg then begin
          (* One-sided collections: a constant classifier separates.
             Σ 0·b = 0, so threshold 0 labels everything Pos and
             threshold 1 labels everything Neg — exact by inspection. *)
          bump Certified_precheck;
          let threshold = if all_pos then Rat.zero else Rat.one in
          {
            verdict = Sep { Linsep.weights = Array.make n Rat.zero; threshold };
            provenance = Certified_precheck;
          }
        end
        else begin
          match tier with
          | Exact_only -> exact_solve "exact-only tier" ~escalated:false reduced
          | Numeric -> begin
              match numeric_attempt ~n groups reduced with
              | Ok (verdict, prov) ->
                  bump prov;
                  { verdict; provenance = prov }
              | Error reason ->
                  if escalate then exact_solve reason ~escalated:true reduced
                  else begin
                    bump (Uncertified reason);
                    {
                      verdict = Unknown reason;
                      provenance = Uncertified reason;
                    }
                  end
            end
        end
      end
    end

let decide_b ?budget ?tier ?escalate examples =
  Guard.run
    (match budget with Some b -> b | None -> Budget.installed ())
    (fun () -> decide ?tier ?escalate examples)

let decide_with_fallback ?budget ?(runner = Guard.runner) ?tier examples =
  let b = match budget with Some b -> b | None -> Budget.installed () in
  (* One deadline for the ladder, fuel refilled per rung — mirroring
     Cq_sep.decide_with_fallback. The numeric rung runs with
     escalation off so a certification failure falls through to the
     exact rung under its own fresh fuel. *)
  let attempt f = runner.Guard.run (Budget.refresh b) f in
  let exact () = attempt (fun () -> decide ~tier:Exact_only examples) in
  match (match tier with Some t -> t | None -> !ambient_tier) with
  | Exact_only -> exact ()
  | Numeric -> begin
      match attempt (fun () -> decide ~tier:Numeric ~escalate:false examples) with
      | Ok ({ verdict = Sep _ | Unsep; _ } as a) -> Ok a
      | Ok { verdict = Unknown _; _ } -> exact ()
      | Error f when Guard.is_resource_failure f -> exact ()
      | Error f -> Error f
    end

let separable examples =
  match (decide examples).verdict with
  | Sep c -> Some c
  | Unsep -> None
  | Unknown _ ->
      (* decide with escalation on cannot answer Unknown. *)
      assert false

let is_separable examples = separable examples <> None
