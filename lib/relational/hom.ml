(* Backtracking homomorphism search with join-based candidate
   generation: the candidates for the next source element are read off a
   destination relation scan filtered by the already-assigned positions
   of the most-informative source fact containing it. *)

type mapping = Elem.t Elem.Map.t

(* Check every fact of [src] containing [x] whose arguments are all
   assigned under [asg]. *)
let facts_ok src dst asg x =
  List.for_all
    (fun f ->
      let args = Fact.args f in
      let all_assigned =
        Array.for_all (fun a -> Elem.Map.mem a asg) args
      in
      (not all_assigned)
      || Db.mem (Fact.make (Fact.rel f) (Array.map (fun a -> Elem.Map.find a asg) args)) dst)
    (Db.facts_with_elem x src)

(* Candidate targets for source element [x] under partial assignment
   [asg]: pick the fact containing [x] with the most assigned arguments
   and scan the matching destination facts; fall back to the whole
   destination domain when [x] has no constraining fact. *)
let candidates src dst asg x =
  let facts = Db.facts_with_elem x src in
  let score f =
    Array.fold_left
      (fun acc a -> if Elem.Map.mem a asg then acc + 1 else acc)
      0 (Fact.args f)
  in
  let best =
    List.fold_left
      (fun acc f ->
        match acc with
        | Some (s, _) when s >= score f -> acc
        | _ -> Some (score f, f))
      None facts
  in
  match best with
  | None -> Elem.Set.elements (Db.domain dst)
  | Some (_, f) ->
      let args = Fact.args f in
      let n = Array.length args in
      let matches t =
        let targs = Fact.args t in
        let ok = ref (Array.length targs = n) in
        (* cqlint: allow R1 — loop bounded by the arity of one fact *)
        for i = 0 to n - 1 do
          if !ok then begin
            match Elem.Map.find_opt args.(i) asg with
            | Some v -> if not (Elem.equal targs.(i) v) then ok := false
            | None -> ()
          end
        done;
        !ok
      in
      let collect acc t =
        if matches t then begin
          let targs = Fact.args t in
          (* x may occur in several positions of f; all of them must
             agree on the candidate value. *)
          let value = ref None in
          let consistent = ref true in
          (* cqlint: allow R1 — loop bounded by the arity of one fact *)
          for i = 0 to n - 1 do
            if Elem.equal args.(i) x then begin
              match !value with
              | None -> value := Some targs.(i)
              | Some v ->
                  if not (Elem.equal v targs.(i)) then consistent := false
            end
          done;
          match (!consistent, !value) with
          | true, Some v ->
              if List.exists (Elem.equal v) acc then acc else v :: acc
          | _ -> acc
        end
        else acc
      in
      List.fold_left collect [] (Db.facts_of_rel (Fact.rel f) dst)

(* Order the unassigned elements: breadth-first through shared facts
   starting from the assigned ones, so the search stays connected and
   candidate generation has constraints to work with. *)
let search_order src fixed =
  let dom = Db.domain src in
  let visited = ref Elem.Set.empty in
  let order = ref [] in
  let queue = Queue.create () in
  let push e =
    if Elem.Set.mem e dom && not (Elem.Set.mem e !visited) then begin
      visited := Elem.Set.add e !visited;
      Queue.add e queue
    end
  in
  List.iter push fixed;
  let drain () =
    while not (Queue.is_empty queue) do
      Budget.tick ~what:"hom: BFS search order" ();
      let e = Queue.pop queue in
      order := e :: !order;
      List.iter
        (fun f -> Array.iter push (Fact.args f))
        (Db.facts_with_elem e src)
    done
  in
  drain ();
  (* Pick up disconnected components. *)
  Elem.Set.iter
    (fun e ->
      if not (Elem.Set.mem e !visited) then begin
        push e;
        drain ()
      end)
    dom;
  List.filter
    (fun e -> not (List.exists (Elem.equal e) fixed))
    (List.rev !order)

let solve ?(fix = []) ?(naive = false) ~src ~dst ~on_solution () =
  let dom = Db.domain src in
  let fix = List.filter (fun (a, _) -> Elem.Set.mem a dom) fix in
  (* Conflicting fixes (same source, different targets) mean no hom. *)
  let init =
    List.fold_left
      (fun acc (a, b) ->
        match acc with
        | None -> None
        | Some m -> begin
            match Elem.Map.find_opt a m with
            | Some b' when not (Elem.equal b b') -> None
            | _ -> Some (Elem.Map.add a b m)
          end)
      (Some Elem.Map.empty) fix
  in
  match init with
  | None -> ()
  | Some init ->
      let fixed_elems = List.map fst fix in
      let seed_ok =
        List.for_all (fun x -> facts_ok src dst init x) fixed_elems
      in
      if seed_ok then begin
        let order = Array.of_list (search_order src fixed_elems) in
        let n = Array.length order in
        let rec go i asg =
          if i >= n then on_solution asg
          else begin
            let x = order.(i) in
            let try_candidate v =
              Budget.tick ~what:"hom search" ();
              let asg' = Elem.Map.add x v asg in
              if facts_ok src dst asg' x then go (i + 1) asg'
            in
            let cands =
              if naive then Elem.Set.elements (Db.domain dst)
              else candidates src dst asg x
            in
            List.iter try_candidate cands
          end
        in
        go 0 init
      end

exception Found of mapping

let find ?fix ?naive ~src ~dst () =
  match
    solve ?fix ?naive ~src ~dst ~on_solution:(fun m -> raise (Found m)) ()
  with
  | () -> None
  | exception Found m -> Some m

let exists ?fix ?naive ~src ~dst () = find ?fix ?naive ~src ~dst () <> None

let pointed src sa dst db =
  if List.length sa <> List.length db then
    invalid_arg "Hom.pointed: tuples of different lengths";
  exists ~fix:(List.combine sa db) ~src ~dst ()

let equiv_pointed d e d' e' =
  pointed d [ e ] d' [ e' ] && pointed d' [ e' ] d [ e ]

let is_hom mapping ~src ~dst =
  List.for_all
    (fun f ->
      let image a =
        match Elem.Map.find_opt a mapping with
        | Some v -> v
        | None -> raise Exit
      in
      match Fact.map_elems image f with
      | f' -> Db.mem f' dst
      | exception Exit -> false)
    (Db.facts src)

let count ?fix ~src ~dst () =
  let n = ref 0 in
  solve ?fix ~src ~dst ~on_solution:(fun _ -> incr n) ();
  !n
