type t = { rel : string; args : Elem.t array }

let make rel args = { rel; args }
let make_l rel args = { rel; args = Array.of_list args }
let rel f = f.rel
let args f = f.args
let arity f = Array.length f.args

let elems f =
  Array.fold_left (fun acc e -> Elem.Set.add e acc) Elem.Set.empty f.args

let compare a b =
  let c = String.compare a.rel b.rel in
  if c <> 0 then c
  else begin
    let la = Array.length a.args and lb = Array.length b.args in
    if la <> lb then Stdlib.compare la lb
    else begin
      (* cqlint: allow R1 — recursion bounded by the arity of one fact *)
      let rec go i =
        if i >= la then 0
        else begin
          let c = Elem.compare a.args.(i) b.args.(i) in
          if c <> 0 then c else go (i + 1)
        end
      in
      go 0
    end
  end

let equal a b = compare a b = 0
let map_elems g f = { f with args = Array.map g f.args }

let to_string f =
  f.rel
  ^ "("
  ^ String.concat ", " (Array.to_list (Array.map Elem.to_string f.args))
  ^ ")"

let pp fmt f = Format.pp_print_string fmt (to_string f)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
