type t = Sym of string | Int of int | Tup of t list

(* cqlint: allow R1 — structural recursion bounded by the element's size *)
let rec compare a b =
  match (a, b) with
  | Sym x, Sym y -> String.compare x y
  | Sym _, (Int _ | Tup _) -> -1
  | Int _, Sym _ -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Int _, Tup _ -> -1
  | Tup _, (Sym _ | Int _) -> 1
  | Tup xs, Tup ys -> compare_list xs ys

(* cqlint: allow R1 — structural recursion bounded by the element's size *)
and compare_list xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_list xs' ys'

let equal a b = compare a b = 0

(* cqlint: allow R1 — structural recursion bounded by the element's size *)
let rec hash = function (* cqlint: allow R3 — strings are hashed in full, no prefix truncation *)
  | Sym s -> Hashtbl.hash s
  | Int n -> n * 2654435761
  | Tup es -> List.fold_left (fun acc e -> (acc * 31) + hash e) 17 es

let sym s = Sym s
let int n = Int n
let tup es = Tup es

(* cqlint: allow R1 — structural recursion bounded by the element's size *)
let rec to_string = function
  | Sym s -> s
  | Int n -> string_of_int n
  | Tup es -> "(" ^ String.concat "," (List.map to_string es) ^ ")"

let pp fmt e = Format.pp_print_string fmt (to_string e)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
