(** A small text format for databases, labelings and training databases.

    Grammar (one item per line; [#] starts a comment):
    {v
      R(a, b)        a fact over relation R
      +e             e is a positive entity   (adds eta(e))
      -e             e is a negative entity   (adds eta(e))
      ?e             e is an unlabeled entity (adds eta(e))
    v}
    Elements are identifiers ([[A-Za-z_][A-Za-z0-9_']*]), integers, or
    parenthesized tuples [(a,b,...)] of elements.

    The parser is hardened against malformed and adversarial input:
    conflicting labels for the same entity ([+a] then [-a]) are
    rejected, lines are capped at 65536 characters, fact arities and
    tuple widths at 64, and every error message names the offending
    token. *)

exception Parse_error of string
(** Raised with a human-readable message (including a line number) on
    malformed input. *)

type document = {
  db : Db.t;  (** all facts, including the generated [eta] facts *)
  labeling : Labeling.t;  (** labels of the [+]/[-] entities *)
}

(** [parse_string s] parses a document.
    @raise Parse_error on malformed input. *)
val parse_string : string -> document

(** [parse_file path] parses the file at [path].
    @raise Parse_error on malformed input.
    @raise Sys_error if the file cannot be read. *)
val parse_file : string -> document

(** [training_of_document doc] interprets the document as a training
    database; unlabeled ([?]) entities are rejected.
    @raise Invalid_argument if some entity is unlabeled. *)
val training_of_document : document -> Labeling.training

(** [print_training t] renders a training database in the format above. *)
(* cqlint: allow R4 — pure printer, one linear pass over the input *)
val print_training : Labeling.training -> string

(** [print_db db] renders a plain database ([?] lines for entities). *)
val print_db : Db.t -> string
