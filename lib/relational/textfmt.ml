exception Parse_error of string

type document = { db : Db.t; labeling : Labeling.t }

(* --- lexing helpers ------------------------------------------------ *)

type token = Ident of string | Num of int | Lpar | Rpar | Comma

let token_to_string = function
  | Ident s -> Printf.sprintf "%S" s
  | Num n -> Printf.sprintf "'%d'" n
  | Lpar -> "'('"
  | Rpar -> "')'"
  | Comma -> "','"

let next_token_to_string = function
  | [] -> "end of line"
  | tok :: _ -> token_to_string tok

(* Hard caps: a malformed or adversarial input must produce a clean
   Parse_error, not an arbitrarily large allocation downstream. *)
let max_line_length = 65_536
let max_arity = 64

let tokenize ~line_no line =
  let fail msg =
    raise (Parse_error (Printf.sprintf "line %d: %s" line_no msg))
  in
  let n = String.length line in
  let is_ident_start c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
  in
  let is_ident c =
    is_ident_start c || (c >= '0' && c <= '9') || c = '\''
  in
  let is_digit c = c >= '0' && c <= '9' in
  (* cqlint: allow R1 — each call advances the cursor; lines are capped at 64k *)
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      match line.[i] with
      | ' ' | '\t' | '\r' -> go (i + 1) acc
      | '#' -> List.rev acc
      | '(' -> go (i + 1) (Lpar :: acc)
      | ')' -> go (i + 1) (Rpar :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | '.' when i = n - 1 -> List.rev acc
      | c when is_ident_start c ->
          let j = ref i in
          (* cqlint: allow R1 — scan bounded by the 64k line-length cap *)
          while !j < n && is_ident line.[!j] do incr j done;
          go !j (Ident (String.sub line i (!j - i)) :: acc)
      | c when is_digit c || c = '-' ->
          let j = ref i in
          if c = '-' then incr j;
          if !j >= n || not (is_digit line.[!j]) then
            fail (Printf.sprintf "unexpected character %C" c);
          (* cqlint: allow R1 — scan bounded by the 64k line-length cap *)
          while !j < n && is_digit line.[!j] do incr j done;
          go !j (Num (int_of_string (String.sub line i (!j - i))) :: acc)
      | c -> fail (Printf.sprintf "unexpected character %C" c)
    end
  in
  go 0 []

(* --- parsing ------------------------------------------------------- *)

(* elem  ::= Ident | Num | '(' elem (',' elem)* ')' *)
let parse_fail ~line_no msg =
  raise (Parse_error (Printf.sprintf "line %d: %s" line_no msg))

(* cqlint: allow R1 — each call consumes at least one token of a finite line *)
let rec parse_elem ~line_no = function
  | Ident s :: rest -> (Elem.sym s, rest)
  | Num n :: rest -> (Elem.int n, rest)
  | Lpar :: rest ->
      (* cqlint: allow R1 — each call consumes at least one token of a finite line *)
      let rec elems acc rest =
        let e, rest = parse_elem ~line_no rest in
        match rest with
        | Comma :: rest -> elems (e :: acc) rest
        | Rpar :: rest -> (List.rev (e :: acc), rest)
        | rest ->
            parse_fail ~line_no
              (Printf.sprintf "expected ',' or ')' in tuple, got %s"
                 (next_token_to_string rest))
      in
      let es, rest = elems [] rest in
      if List.length es > max_arity then
        parse_fail ~line_no
          (Printf.sprintf "tuple of width %d exceeds the maximum %d"
             (List.length es) max_arity);
      (Elem.tup es, rest)
  | rest ->
      parse_fail ~line_no
        (Printf.sprintf "expected an element, got %s"
           (next_token_to_string rest))

let parse_fact ~line_no rel tokens =
  match tokens with
  | Lpar :: rest ->
      (* cqlint: allow R1 — each call consumes at least one token of a finite line *)
      let rec args acc rest =
        let e, rest = parse_elem ~line_no rest in
        match rest with
        | Comma :: rest -> args (e :: acc) rest
        | Rpar :: rest -> (List.rev (e :: acc), rest)
        | rest ->
            parse_fail ~line_no
              (Printf.sprintf
                 "expected ',' or ')' in arguments of %S, got %s" rel
                 (next_token_to_string rest))
      in
      let es, rest = args [] rest in
      if rest <> [] then
        parse_fail ~line_no
          (Printf.sprintf "trailing tokens after fact %S: %s" rel
             (next_token_to_string rest));
      if List.length es > max_arity then
        parse_fail ~line_no
          (Printf.sprintf "fact %S has arity %d, exceeding the maximum %d"
             rel (List.length es) max_arity);
      Fact.make_l rel es
  | rest ->
      parse_fail ~line_no
        (Printf.sprintf "expected '(' after relation name %S, got %s" rel
           (next_token_to_string rest))

let parse_string s =
  let db = ref Db.empty in
  let labeling = ref Labeling.empty in
  let lines = String.split_on_char '\n' s in
  List.iteri
    (fun idx raw ->
      let line_no = idx + 1 in
      if String.length raw > max_line_length then
        parse_fail ~line_no
          (Printf.sprintf "line of %d characters exceeds the maximum %d"
             (String.length raw) max_line_length);
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else if line.[0] = '+' || line.[0] = '-' || line.[0] = '?' then begin
        let marker = line.[0] in
        let rest = String.sub line 1 (String.length line - 1) in
        let tokens = tokenize ~line_no rest in
        let e, leftover = parse_elem ~line_no tokens in
        if leftover <> [] then
          parse_fail ~line_no
            (Printf.sprintf "trailing tokens after entity %s: %s"
               (Elem.to_string e)
               (next_token_to_string leftover));
        let set_label l =
          match Labeling.get_opt e !labeling with
          | Some l' when l' <> l ->
              parse_fail ~line_no
                (Printf.sprintf
                   "conflicting label for entity %s (already labeled %s)"
                   (Elem.to_string e)
                   (match l' with Labeling.Pos -> "'+'" | Labeling.Neg -> "'-'"))
          | _ -> labeling := Labeling.set e l !labeling
        in
        db := Db.add_entity e !db;
        match marker with
        | '+' -> set_label Labeling.Pos
        | '-' -> set_label Labeling.Neg
        | _ -> ()
      end
      else begin
        match tokenize ~line_no line with
        | Ident rel :: rest ->
            db := Db.add (parse_fact ~line_no rel rest) !db
        | rest ->
            parse_fail ~line_no
              (Printf.sprintf "expected a fact or an entity line, got %s"
                 (next_token_to_string rest))
      end)
    lines;
  { db = !db; labeling = !labeling }

(* The channel is closed on every path — including a read that raises
   (e.g. the file shrank underneath us) — so a daemon retrying failing
   parses in a loop cannot exhaust its fd table. *)
let parse_file path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string s

let training_of_document doc = Labeling.training doc.db doc.labeling

(* --- printing ------------------------------------------------------ *)

let print_facts buf db labeling =
  List.iter
    (fun f ->
      if Fact.rel f <> Db.entity_rel then begin
        Buffer.add_string buf (Fact.to_string f);
        Buffer.add_char buf '\n'
      end)
    (Db.facts db);
  List.iter
    (fun e ->
      let marker =
        match labeling with
        | None -> "?"
        | Some l -> begin
            match Labeling.get_opt e l with
            | Some Labeling.Pos -> "+"
            | Some Labeling.Neg -> "-"
            | None -> "?"
          end
      in
      Buffer.add_string buf marker;
      Buffer.add_string buf (Elem.to_string e);
      Buffer.add_char buf '\n')
    (Db.entities db)

let print_training (t : Labeling.training) =
  let buf = Buffer.create 256 in
  print_facts buf t.Labeling.db (Some t.Labeling.labeling);
  Buffer.contents buf

let print_db db =
  let buf = Buffer.create 256 in
  print_facts buf db None;
  Buffer.contents buf
