(* Facts of the n-ary product: for each relation R and each n-tuple of
   R-facts (f_1,...,f_n), the fact R(ē) with ē.(j) the n-tuple of the
   j-th arguments. Built relation by relation to avoid scanning fact
   tuples of distinct relations. *)

let nary dbs =
  match dbs with
  | [] -> invalid_arg "Product.nary: empty list"
  | first :: _ ->
      let rels = List.map fst (Db.relations first) in
      let product_facts_of_rel rel =
        let fact_lists = List.map (Db.facts_of_rel rel) dbs in
        (* All n-tuples (f_1,...,f_n) with f_i drawn from the i-th
           database's R-facts; empty when some database lacks R. *)
        let rec combos = function
          | [] -> [ [] ]
          | fl :: rest ->
              let tails = combos rest in
              List.concat_map
                (fun f ->
                  Budget.tick ~what:"product enumeration" ();
                  List.map (fun t -> f :: t) tails)
                fl
        in
        let mk facts_tuple =
          match facts_tuple with
          | [] -> None
          | f0 :: _ ->
              let arity = Fact.arity f0 in
              if List.for_all (fun f -> Fact.arity f = arity) facts_tuple
              then begin
                let args =
                  Array.init arity (fun j ->
                      Elem.tup
                        (List.map (fun f -> (Fact.args f).(j)) facts_tuple))
                in
                Some (Fact.make rel args)
              end
              else None
        in
        List.filter_map mk (combos fact_lists)
      in
      let facts = List.concat_map product_facts_of_rel rels in
      Budget.check_size ~what:"product database" (List.length facts);
      Db.of_facts facts

let binary d1 d2 = nary [ d1; d2 ]

let pointed pds =
  match pds with
  | [] -> invalid_arg "Product.pointed: empty list"
  | _ ->
      let dbs = List.map fst pds in
      let point = Elem.tup (List.map snd pds) in
      (nary dbs, point)
