let all_features ~m ?p db =
  Cq_enum.feature_queries ?max_var_occ:p
    ~schema:(Cq_enum.schema_of_db db) ~max_atoms:m ()

let pruned_features ~m ?p (t : Labeling.training) =
  let features = all_features ~m ?p t.db in
  let entities = Db.entities t.db in
  let seen = Hashtbl.create 64 in
  List.filter
    (fun q ->
      let selected = Elem.Set.of_list (Eval_engine.eval q t.db) in
      let column = List.map (fun e -> Elem.Set.mem e selected) entities in
      if Hashtbl.mem seen column then false
      else begin
        Hashtbl.add seen column ();
        true
      end)
    features

let generate ~m ?p (t : Labeling.training) =
  let stat = pruned_features ~m ?p t in
  match Statistic.separating_classifier stat t with
  | Some c -> Some (stat, c)
  | None -> None

let separable ~m ?p t = generate ~m ?p t <> None

let classify ~m ?p (t : Labeling.training) eval_db =
  match generate ~m ?p t with
  | None ->
      invalid_arg "Atoms_sep.classify: training database is not CQ[m]-separable"
  | Some (stat, c) -> Statistic.induced_labeling stat c eval_db

let min_errors ~m ?p ?cap (t : Labeling.training) =
  let stat = pruned_features ~m ?p t in
  let examples = Statistic.examples stat t in
  match Linsep.min_errors_exact ?cap examples with
  | Some (err, c) -> Some (err, stat, c)
  | None -> None

let error_budget ~eps n =
  (* largest integer ≤ eps·n *)
  let scaled = Rat.mul eps (Rat.of_int n) in
  let num = Rat.num scaled and den = Rat.den scaled in
  Bigint.to_int (Bigint.div num den)

let apx_separable ~m ?p ~eps (t : Labeling.training) =
  let n = List.length (Db.entities t.db) in
  let budget = error_budget ~eps n in
  match min_errors ~m ?p ~cap:budget t with
  | Some (err, _, _) -> err <= budget
  | None -> false

let apx_classify ~m ?p ~eps (t : Labeling.training) eval_db =
  let n = List.length (Db.entities t.db) in
  let budget = error_budget ~eps n in
  match min_errors ~m ?p ~cap:budget t with
  | Some (err, stat, c) when err <= budget ->
      (Statistic.induced_labeling stat c eval_db, err)
  | _ ->
      invalid_arg
        "Atoms_sep.apx_classify: no CQ[m] classifier within the error budget"

(* --- budgeted variants ---------------------------------------------- *)

let default_budget = function Some b -> b | None -> Budget.installed ()

(* --- sharded variants ------------------------------------------------ *)

(* The Shardexec client contract: workers compute raw per-range data —
   here the indicator columns of a contiguous slice of the feature
   list — and every order-dependent step (the Hashtbl column dedupe,
   the LP) runs sequentially in the parent over the range-ordered
   concatenation. The resulting statistic is therefore byte-identical
   to the sequential {!pruned_features}, whichever workers die and in
   whatever order shards complete. *)

let column_slice fq entities db { Shardexec.lo; hi } =
  let out = ref [] in
  for i = hi - 1 downto lo do
    Budget.tick ~what:"atoms sep: column slice" ();
    let selected = Elem.Set.of_list (Eval_engine.eval fq.(i) db) in
    out := List.map (fun e -> Elem.Set.mem e selected) entities :: !out
  done;
  !out

let dedupe_features features columns =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun (q, column) ->
      if Hashtbl.mem seen column then None
      else begin
        Hashtbl.add seen column ();
        Some q
      end)
    (List.combine features columns)

let pruned_features_sharded ~sharding ?budget ~m ?p (t : Labeling.training) =
  let b = default_budget budget in
  match Guard.run b (fun () -> all_features ~m ?p t.db) with
  | Error _ as e -> e
  | Ok features -> begin
      let entities = Db.entities t.db in
      let fq = Array.of_list features in
      match
        Shardexec.run ~plan:sharding ~budget:b ~n:(Array.length fq)
          ~compute:(column_slice fq entities t.db)
          ~merge:(fun a c -> a @ c)
          ()
      with
      | Error _ as e -> e
      | Ok columns -> Ok (dedupe_features features columns)
    end

let separable_sharded ~sharding ?budget ~m ?p t =
  match pruned_features_sharded ~sharding ?budget ~m ?p t with
  | Error _ as e -> e
  | Ok stat ->
      Guard.run (default_budget budget) (fun () ->
          Statistic.separating_classifier stat t <> None)

let min_errors_sharded ~sharding ?budget ~m ?p ?cap t =
  match pruned_features_sharded ~sharding ?budget ~m ?p t with
  | Error _ as e -> e
  | Ok stat ->
      Guard.run (default_budget budget) (fun () ->
          let examples = Statistic.examples stat t in
          match Linsep.min_errors_exact ?cap examples with
          | Some (err, c) -> Some (err, stat, c)
          | None -> None)

let separable_b ?budget ~m ?p t =
  Guard.run (default_budget budget) (fun () -> separable ~m ?p t)

let pruned_features_b ?budget ~m ?p t =
  Guard.run (default_budget budget) (fun () -> pruned_features ~m ?p t)

let generate_b ?budget ~m ?p t =
  Guard.run (default_budget budget) (fun () -> generate ~m ?p t)

let classify_b ?budget ~m ?p t eval_db =
  Guard.run (default_budget budget) (fun () -> classify ~m ?p t eval_db)

let min_errors_b ?budget ~m ?p ?cap t =
  Guard.run (default_budget budget) (fun () -> min_errors ~m ?p ?cap t)

let apx_separable_b ?budget ~m ?p ~eps t =
  Guard.run (default_budget budget) (fun () -> apx_separable ~m ?p ~eps t)

let apx_classify_b ?budget ~m ?p ~eps t eval_db =
  Guard.run (default_budget budget) (fun () ->
      apx_classify ~m ?p ~eps t eval_db)
