let all_features ~m ?p db =
  Cq_enum.feature_queries ?max_var_occ:p
    ~schema:(Cq_enum.schema_of_db db) ~max_atoms:m ()

let pruned_features ~m ?p (t : Labeling.training) =
  let features = all_features ~m ?p t.db in
  let entities = Db.entities t.db in
  let seen = Hashtbl.create 64 in
  List.filter
    (fun q ->
      let selected = Elem.Set.of_list (Eval_engine.eval q t.db) in
      let column = List.map (fun e -> Elem.Set.mem e selected) entities in
      if Hashtbl.mem seen column then false
      else begin
        Hashtbl.add seen column ();
        true
      end)
    features

let generate ~m ?p (t : Labeling.training) =
  let stat = pruned_features ~m ?p t in
  match Statistic.separating_classifier stat t with
  | Some c -> Some (stat, c)
  | None -> None

let separable ~m ?p t = generate ~m ?p t <> None

let classify ~m ?p (t : Labeling.training) eval_db =
  match generate ~m ?p t with
  | None ->
      invalid_arg "Atoms_sep.classify: training database is not CQ[m]-separable"
  | Some (stat, c) -> Statistic.induced_labeling stat c eval_db

let min_errors ~m ?p ?cap (t : Labeling.training) =
  let stat = pruned_features ~m ?p t in
  let examples = Statistic.examples stat t in
  match Linsep.min_errors_exact ?cap examples with
  | Some (err, c) -> Some (err, stat, c)
  | None -> None

let error_budget ~eps n =
  (* largest integer ≤ eps·n *)
  let scaled = Rat.mul eps (Rat.of_int n) in
  let num = Rat.num scaled and den = Rat.den scaled in
  Bigint.to_int (Bigint.div num den)

let apx_separable ~m ?p ~eps (t : Labeling.training) =
  let n = List.length (Db.entities t.db) in
  let budget = error_budget ~eps n in
  match min_errors ~m ?p ~cap:budget t with
  | Some (err, _, _) -> err <= budget
  | None -> false

let apx_classify ~m ?p ~eps (t : Labeling.training) eval_db =
  let n = List.length (Db.entities t.db) in
  let budget = error_budget ~eps n in
  match min_errors ~m ?p ~cap:budget t with
  | Some (err, stat, c) when err <= budget ->
      (Statistic.induced_labeling stat c eval_db, err)
  | _ ->
      invalid_arg
        "Atoms_sep.apx_classify: no CQ[m] classifier within the error budget"

(* --- budgeted variants ---------------------------------------------- *)

let default_budget = function Some b -> b | None -> Budget.installed ()

let separable_b ?budget ~m ?p t =
  Guard.run (default_budget budget) (fun () -> separable ~m ?p t)

let pruned_features_b ?budget ~m ?p t =
  Guard.run (default_budget budget) (fun () -> pruned_features ~m ?p t)

let generate_b ?budget ~m ?p t =
  Guard.run (default_budget budget) (fun () -> generate ~m ?p t)

let classify_b ?budget ~m ?p t eval_db =
  Guard.run (default_budget budget) (fun () -> classify ~m ?p t eval_db)

let min_errors_b ?budget ~m ?p ?cap t =
  Guard.run (default_budget budget) (fun () -> min_errors ~m ?p ?cap t)

let apx_separable_b ?budget ~m ?p ~eps t =
  Guard.run (default_budget budget) (fun () -> apx_separable ~m ?p ~eps t)

let apx_classify_b ?budget ~m ?p ~eps t eval_db =
  Guard.run (default_budget budget) (fun () ->
      apx_classify ~m ?p ~eps t eval_db)
