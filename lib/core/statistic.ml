type t = Cq.t list

let dimension = List.length

let vector stat db e =
  Array.of_list
    (List.map (fun q -> if Eval_engine.selects q db e then 1 else -1) stat)

(* Evaluate feature by feature (one engine run per query) rather than
   entity by entity: the planner picks Yannakakis or the decomposition
   engine where applicable, turning the inner loop polynomial. *)
let vectors stat db =
  let entities = Db.entities db in
  let columns =
    List.map
      (fun q -> Elem.Set.of_list (Eval_engine.eval q db))
      stat
  in
  List.map
    (fun e ->
      ( e,
        Array.of_list
          (List.map
             (fun selected -> if Elem.Set.mem e selected then 1 else -1)
             columns) ))
    entities

let examples stat (t : Labeling.training) =
  List.map
    (fun (e, vec) -> { Linsep.vec; label = Labeling.get e t.labeling })
    (vectors stat t.db)

(* Routed through the numeric tier: float-first with exact
   certification, escalating to the exact simplex when certification
   fails. Same contract as Linsep.separable. *)
let separating_classifier stat t = Nsep.separable (examples stat t)
let separates stat t = separating_classifier stat t <> None

let induced_labeling stat classifier db =
  List.fold_left
    (fun acc (e, vec) ->
      Labeling.set e (Linsep.classify classifier vec) acc)
    Labeling.empty (vectors stat db)

let errors stat classifier (t : Labeling.training) =
  Labeling.disagreement (induced_labeling stat classifier t.db) t.labeling

let max_atoms stat =
  List.fold_left (fun acc q -> max acc (Cq.num_atoms q)) 0 stat

let pp fmt stat =
  Format.fprintf fmt "@[<v>";
  List.iteri (fun i q -> Format.fprintf fmt "q%d: %a@ " (i + 1) Cq.pp q) stat;
  Format.fprintf fmt "@]"
