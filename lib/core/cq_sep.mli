(** Separability with unrestricted CQ features.

    CQ-Sep is coNP-complete (Theorem 3.2, from Kimelfeld–Ré): a
    training database is CQ-separable iff no two oppositely-labeled
    entities are homomorphically equivalent ([(D,e) → (D,e')] and
    back). Unlike GHW(k), the canonical features here are
    polynomial-sized — [q_e] is simply the canonical CQ of the pointed
    database [(D,e)] — so feature generation and classification are
    effective (with NP-hard query evaluations inside, faithful to the
    combined complexity). *)

(** [hom_preorder db entities] is the matrix of
    [(D,e_i) → (D,e_j)]. *)
val hom_preorder : Db.t -> Elem.t list -> bool array array

(** [chain t] is the equivalence-class structure of the homomorphism
    preorder on [t]'s entities. *)
val chain : Labeling.training -> Preorder_chain.t

(** [separable t] decides CQ-Sep. *)
val separable : Labeling.training -> bool

(** [inseparable_witness t] returns an oppositely-labeled
    hom-equivalent pair when the database is not CQ-separable. *)
val inseparable_witness : Labeling.training -> (Elem.t * Elem.t) option

(** [generate t] produces a separating pair [(Π, Λ)] when one exists:
    [Π = (q_{e_1}, ..., q_{e_m})] with [q_{e_i}] the canonical CQ of
    [(D, e_i)] over class representatives in topological order, and
    [Λ] the explicit chain classifier. [minimize] core-reduces each
    feature. *)
val generate :
  ?minimize:bool -> Labeling.training -> (Statistic.t * Linsep.classifier) option

(** [classify t eval_db] solves CQ-Cls: labels the entities of
    [eval_db] consistently with a statistic separating [t].
    @raise Invalid_argument if [t] is not CQ-separable. *)
val classify : Labeling.training -> Db.t -> Labeling.t

(** [apx_relabel t] is the Algorithm-2 analogue for CQ: the
    hom-equivalence classes take their majority label; returns the
    CQ-separable relabeling and its (minimal) disagreement. *)
val apx_relabel : Labeling.training -> Labeling.t * int

(** [apx_separable ~eps t] decides CQ-ApxSep for error fraction
    [eps]. *)
val apx_separable : eps:Rat.t -> Labeling.training -> bool

(** [separable_b ?budget t] is {!separable} under [budget] (default:
    the ambient budget): always returns, converting deadline/fuel
    exhaustion into a structured [Error]. *)
val separable_b :
  ?budget:Budget.t -> Labeling.training -> (bool, Guard.failure) result

(** [apx_relabel_b ?budget t] is {!apx_relabel} under [budget]. *)
val apx_relabel_b :
  ?budget:Budget.t -> Labeling.training ->
  (Labeling.t * int, Guard.failure) result

(** Budgeted counterparts of the remaining entry points, in the style
    of {!separable_b}. *)

val chain_b :
  ?budget:Budget.t -> Labeling.training ->
  (Preorder_chain.t, Guard.failure) result

val inseparable_witness_b :
  ?budget:Budget.t -> Labeling.training ->
  ((Elem.t * Elem.t) option, Guard.failure) result

val generate_b :
  ?budget:Budget.t -> ?minimize:bool -> Labeling.training ->
  ((Statistic.t * Linsep.classifier) option, Guard.failure) result

val classify_b :
  ?budget:Budget.t -> Labeling.training -> Db.t ->
  (Labeling.t, Guard.failure) result

val apx_separable_b :
  ?budget:Budget.t -> eps:Rat.t -> Labeling.training ->
  (bool, Guard.failure) result

(** How a {!decide_with_fallback} answer was obtained. *)
type provenance =
  | Exact  (** the exact CQ-Sep decision finished within budget *)
  | Degraded of Language.t
      (** the answer is for the named weaker language (a CQ[m] rung);
          a positive answer still certifies CQ-separability, a
          negative one only refutes the weaker language *)
  | Approximate of Rat.t
      (** the final rung: minimal misclassified fraction achievable
          with CQ[1] features; zero slack certifies separability *)
  | Gave_up of Guard.failure
      (** every rung exhausted its budget (or a rung failed with a
          non-resource error) *)

type ladder_result = {
  answer : bool option;  (** [None] iff the ladder gave up *)
  provenance : provenance;
}

val pp_provenance : Format.formatter -> provenance -> unit

(** [decide_with_fallback ?budget ?degrade ?rungs ?runner ?sharding t]
    runs the graceful-degradation ladder: exact CQ-Sep, then CQ[m] for
    each [m] in [rungs] (default [3; 2; 1]), then approximate
    separability with reported slack. All rungs share [budget]'s
    absolute deadline; fuel is refilled per rung. With
    [degrade = false] (or on a non-resource failure) the ladder stops
    after the exact attempt and reports [Gave_up]. [runner] (default
    {!Guard.runner}) chooses the execution strategy per rung — pass
    [Isolate.runner ()] for hard process isolation, or wrap either in
    [Guard.retrying] for bounded budget-escalating retries. With
    [sharding] (a {!Shardexec.plan} with more than one shard), the
    CQ[m] and slack rungs instead fan their candidate spaces out
    across fault-tolerant fork workers
    ({!Atoms_sep.separable_sharded}, {!Atoms_sep.min_errors_sharded});
    answers are byte-identical to the sequential rungs, so provenance
    is unaffected. The exact rung has no per-feature candidate space
    and always goes through [runner]. *)
val decide_with_fallback :
  ?budget:Budget.t -> ?degrade:bool -> ?rungs:int list ->
  ?runner:Guard.runner -> ?sharding:Shardexec.plan ->
  Labeling.training -> ladder_result
