let to_training ~edges =
  if edges = [] then invalid_arg "Vc_reduction.to_training: empty edge list";
  List.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Vc_reduction.to_training: self-loop")
    edges;
  let node v = Elem.sym (Printf.sprintf "n%d" v) in
  let edge_entity (u, v) = Elem.sym (Printf.sprintf "e%d_%d" (min u v) (max u v)) in
  let vertices =
    List.sort_uniq compare (List.concat_map (fun (u, v) -> [ u; v ]) edges)
  in
  let db = ref Db.empty in
  List.iter
    (fun v ->
      db := Db.add (Fact.make_l (Printf.sprintf "L%d" v) [ node v ]) !db)
    vertices;
  List.iter
    (fun (u, v) ->
      let e = edge_entity (u, v) in
      db := Db.add (Fact.make_l "Inc" [ e; node u ]) !db;
      db := Db.add (Fact.make_l "Inc" [ e; node v ]) !db;
      db := Db.add_entity e !db)
    edges;
  let p = Elem.sym "p_distinguished" in
  db := Db.add (Fact.make_l "Inc" [ p; Elem.sym "n_fresh" ]) !db;
  db := Db.add_entity p !db;
  let labeled =
    (p, Labeling.Pos)
    :: List.map (fun e -> (edge_entity e, Labeling.Neg)) edges
  in
  Labeling.training !db (Labeling.of_list labeled)

let min_vertex_cover ~edges =
  let vertices =
    Array.of_list
      (List.sort_uniq compare (List.concat_map (fun (u, v) -> [ u; v ]) edges))
  in
  let n = Array.length vertices in
  let index v =
    (* cqlint: allow R1 — scan bounded by the vertex count *)
    let rec go i = if vertices.(i) = v then i else go (i + 1) in
    go 0
  in
  let best = ref n in
  for mask = 0 to (1 lsl n) - 1 do
    Budget.tick ~what:"vc: cover enumeration" ();
    let size =
      (* cqlint: allow R1 — recursion bounded by the bits of one mask *)
      let rec pop m acc = if m = 0 then acc else pop (m lsr 1) (acc + (m land 1)) in
      pop mask 0
    in
    if size < !best then begin
      let covers =
        List.for_all
          (fun (u, v) ->
            mask land (1 lsl index u) <> 0 || mask land (1 lsl index v) <> 0)
          edges
      in
      if covers then best := size
    end
  done;
  !best

let min_dimension_equals_cover ~edges =
  let t = to_training ~edges in
  let dim =
    Cqfeat.min_dimension (Language.Cq_atoms { m = 2; p = None }) t
  in
  (dim, min_vertex_cover ~edges)
