(** Statistics: sequences of feature queries (Section 3).

    A statistic [Π = (q_1, ..., q_n)] maps every entity [e] of a
    database to the ±1 vector [Π^D(e)] of feature-query indicators.
    Together with a linear classifier it induces a labeling; [(Π, Λ)]
    separates a training database when that labeling is exactly the
    training labeling. *)

type t = Cq.t list

val dimension : t -> int

(** [vector stat db e] is [Π^D(e)] (entries [+1]/[-1]). *)
val vector : t -> Db.t -> Elem.t -> int array

(** [vectors stat db] is [Π^D] over all entities of [db]. *)
val vectors : t -> Db.t -> (Elem.t * int array) list

(** [examples stat t] is the training collection
    [(Π^D(e), λ(e))_{e ∈ η(D)}]. *)
(* cqlint: allow R4 — one evaluation pass per feature; the CQ evaluators
   inside tick, so callers budget at the Cqfeat/Atoms_sep entry points *)
val examples : t -> Labeling.training -> Linsep.example list

(** [separating_classifier stat t] finds a linear classifier [Λ] such
    that [(stat, Λ)] separates [t], if any (LP-based). *)
(* cqlint: allow R4 — thin wrapper over Linsep.separable, whose simplex
   ticks; callers budget at the Cqfeat/Atoms_sep entry points *)
val separating_classifier : t -> Labeling.training -> Linsep.classifier option

(** [separates stat t] is [separating_classifier stat t <> None]. *)
(* cqlint: allow R4 — thin wrapper over separating_classifier *)
val separates : t -> Labeling.training -> bool

(** [induced_labeling stat classifier db] is the labeling
    [e ↦ Λ(Π^D(e))] of the entities of [db]. *)
val induced_labeling : t -> Linsep.classifier -> Db.t -> Labeling.t

(** [errors stat classifier t] counts training entities on which the
    induced labeling disagrees with [t]'s labeling. *)
(* cqlint: allow R4 — one linear counting pass over the ticking
   evaluators; callers budget at the Cqfeat/Atoms_sep entry points *)
val errors : t -> Linsep.classifier -> Labeling.training -> int

(** [max_atoms stat] is the largest atom count among the features. *)
val max_atoms : t -> int

(** [pp] prints the feature queries, one per line. *)
val pp : Format.formatter -> t -> unit
