(** Separability, classification and approximation with GHW(k)
    features (Section 5 and Section 7.2 of the paper).

    - {!separable} is the polynomial-time GHW(k)-separability test of
      Theorem 5.3 / Proposition 5.5, built on the cover-game preorder.
    - {!classify} is Algorithm 1 (Theorem 5.8): classification of an
      evaluation database consistent with a separating statistic that
      is {e never materialized}.
    - {!generate} materializes the statistic anyway via depth-bounded
      k-cover unravelings — exponential, as Proposition 5.6 permits and
      Theorem 5.7 forces.
    - {!apx_relabel} is Algorithm 2 (Theorem 7.4): the closest
      GHW(k)-separable relabeling; {!apx_separable} and {!apx_classify}
      are Corollary 7.5. *)

(** [chain ~k t] is the equivalence-class structure of the [→_k]
    preorder on [t]'s entities. *)
val chain : k:int -> Labeling.training -> Preorder_chain.t

(** [separable ~k t] decides GHW(k)-Sep in polynomial time. *)
val separable : k:int -> Labeling.training -> bool

(** [separable_b ?budget ~k t] is {!separable} under [budget]
    (default: the ambient budget); resource exhaustion becomes a
    structured [Error]. *)
val separable_b :
  ?budget:Budget.t -> k:int -> Labeling.training ->
  (bool, Guard.failure) result

(** [inseparable_witness ~k t] returns an oppositely-labeled
    [→_k]-equivalent pair when not separable. *)
val inseparable_witness : k:int -> Labeling.training -> (Elem.t * Elem.t) option

(** [classify ~k t eval_db] is Algorithm 1.
    @raise Invalid_argument if [t] is not GHW(k)-separable. *)
val classify : k:int -> Labeling.training -> Db.t -> Labeling.t

(** [generate ~k ~depth t] materializes
    [(q_{e_1}, ..., q_{e_m}, Λ)] using depth-[depth] unravelings. For
    [depth] large enough the statistic is exactly the canonical one;
    the size is exponential in [depth] (Theorem 5.7 — consult
    {!Unravel.node_count} first). *)
val generate :
  k:int -> depth:int -> Labeling.training -> (Statistic.t * Linsep.classifier) option

(** [apx_relabel ~k t] is Algorithm 2: the GHW(k)-separable labeling
    closest to [t]'s (majority label per [→_k]-class); returns it with
    its disagreement, minimal among all separable relabelings
    (Theorem 7.4). *)
val apx_relabel : k:int -> Labeling.training -> Labeling.t * int

(** [apx_separable ~k ~eps t] decides GHW(k)-ApxSep (Corollary 7.5):
    the minimal disagreement is at most [eps · |η(D)|]. *)
val apx_separable : k:int -> eps:Rat.t -> Labeling.training -> bool

(** [apx_classify ~k t eval_db] solves GHW(k)-ApxCls: Algorithm 1 run
    on the Algorithm-2 relabeling (Corollary 7.5). Returns the
    evaluation labeling and the training error incurred. *)
val apx_classify : k:int -> Labeling.training -> Db.t -> Labeling.t * int

(** Budgeted counterparts of the entry points above, in the style of
    {!separable_b}: each runs under the given budget (default: the
    ambient one) and converts resource exhaustion into a structured
    [Error]. *)

val chain_b :
  ?budget:Budget.t -> k:int -> Labeling.training ->
  (Preorder_chain.t, Guard.failure) result

val inseparable_witness_b :
  ?budget:Budget.t -> k:int -> Labeling.training ->
  ((Elem.t * Elem.t) option, Guard.failure) result

val classify_b :
  ?budget:Budget.t -> k:int -> Labeling.training -> Db.t ->
  (Labeling.t, Guard.failure) result

val generate_b :
  ?budget:Budget.t -> k:int -> depth:int -> Labeling.training ->
  ((Statistic.t * Linsep.classifier) option, Guard.failure) result

val apx_relabel_b :
  ?budget:Budget.t -> k:int -> Labeling.training ->
  (Labeling.t * int, Guard.failure) result

val apx_separable_b :
  ?budget:Budget.t -> k:int -> eps:Rat.t -> Labeling.training ->
  (bool, Guard.failure) result

val apx_classify_b :
  ?budget:Budget.t -> k:int -> Labeling.training -> Db.t ->
  (Labeling.t * int, Guard.failure) result
