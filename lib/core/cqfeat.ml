(* Structured logging: enable with Logs.Src.set_level on the "cqfeat"
   source (the CLI's --verbose does this). *)
let log_src = Logs.Src.create "cqfeat" ~doc:"cqfeat core decisions"

module Log = (val Logs.src_log log_src)

let rec separable ?dim lang t =
  let result =
    separable_inner ?dim lang t
  in
  Log.debug (fun m ->
      m "%s-Sep%s(|eta|=%d) = %b" (Language.to_string lang)
        (match dim with Some d -> Printf.sprintf "[%d]" d | None -> "")
        (List.length (Db.entities t.Labeling.db))
        result);
  result

and separable_inner ?dim lang t =
  match dim with
  | Some dim -> Dim_sep.separable ~dim lang t
  | None -> begin
      match (lang : Language.t) with
      | Language.Cq_all | Language.Epfo -> Cq_sep.separable t
      | Language.Cq_atoms { m; p } -> Atoms_sep.separable ~m ?p t
      | Language.Ghw k -> Ghw_sep.separable ~k t
      | Language.Fo -> Fo_sep.fo_separable t
      | Language.Fo_k k -> Pebble_game.fok_separable ~k t
    end

let error_budget ~eps n =
  let scaled = Rat.mul eps (Rat.of_int n) in
  Bigint.to_int (Bigint.div (Rat.num scaled) (Rat.den scaled))

(* FO analogue of Algorithm 2: majority label per isomorphism class is
   the closest FO-separable relabeling. *)
let fo_min_disagreement (t : Labeling.training) =
  List.fold_left
    (fun acc cls ->
      let balance =
        List.fold_left
          (fun b e -> b + Labeling.label_sign (Labeling.get e t.labeling))
          0 cls
      in
      let minority = (List.length cls - abs balance) / 2 in
      acc + minority)
    0 (Fo_sep.iso_classes t)

(* Same majority argument, FO_k classes. *)
let fok_min_disagreement ~k (t : Labeling.training) =
  let classes =
    List.fold_left
      (fun classes e ->
        (* cqlint: allow R1 — recursion bounded by the class count; the
           equivalence test inside ticks *)
        let rec place = function
          | [] -> [ [ e ] ]
          | (rep :: _ as cls) :: rest ->
              if Pebble_game.equivalent ~k (t.db, [ rep ]) (t.db, [ e ]) then
                (e :: cls) :: rest
              else cls :: place rest
          | [] :: _ -> assert false
        in
        place classes)
      []
      (Db.entities t.db)
  in
  List.fold_left
    (fun acc cls ->
      let balance =
        List.fold_left
          (fun b e -> b + Labeling.label_sign (Labeling.get e t.labeling))
          0 cls
      in
      acc + ((List.length cls - abs balance) / 2))
    0 classes

let apx_separable ?dim ~eps lang t =
  match dim with
  | Some dim -> begin
      match (lang : Language.t) with
      | Language.Fo ->
          (* Dimension collapse: one feature always suffices. *)
          dim >= 1
          &&
          let n = List.length (Db.entities t.Labeling.db) in
          fo_min_disagreement t <= error_budget ~eps n
      | Language.Fo_k k ->
          dim >= 1
          &&
          let n = List.length (Db.entities t.Labeling.db) in
          fok_min_disagreement ~k t <= error_budget ~eps n
      | Language.Epfo | Language.Cq_all | Language.Cq_atoms _ | Language.Ghw _
        ->
          let lang =
            match lang with Language.Epfo -> Language.Cq_all | l -> l
          in
          let sets = Dim_sep.realizable_sets lang t in
          let n = List.length (Db.entities t.Labeling.db) in
          let budget = error_budget ~eps n in
          (match Dim_sep.min_errors_with_sets ~dim ~sets ~cap:budget t with
          | Some (err, _, _) -> err <= budget
          | None -> false)
    end
  | None -> begin
      match (lang : Language.t) with
      | Language.Cq_all | Language.Epfo -> Cq_sep.apx_separable ~eps t
      | Language.Cq_atoms { m; p } -> Atoms_sep.apx_separable ~m ?p ~eps t
      | Language.Ghw k -> Ghw_sep.apx_separable ~k ~eps t
      | Language.Fo ->
          let n = List.length (Db.entities t.Labeling.db) in
          fo_min_disagreement t <= error_budget ~eps n
      | Language.Fo_k k ->
          let n = List.length (Db.entities t.Labeling.db) in
          fok_min_disagreement ~k t <= error_budget ~eps n
    end

let generate ?(ghw_depth = 2) ?dim lang t =
  Log.info (fun m ->
      m "generating %s statistic%s" (Language.to_string lang)
        (match dim with Some d -> Printf.sprintf " (dim <= %d)" d | None -> ""));
  match dim with
  | Some dim -> Dim_sep.generate ~ghw_depth_cap:(max ghw_depth 8) ~dim lang t
  | None -> begin
      match (lang : Language.t) with
  | Language.Cq_all | Language.Epfo -> Cq_sep.generate t
  | Language.Cq_atoms { m; p } -> Atoms_sep.generate ~m ?p t
  | Language.Ghw k -> Ghw_sep.generate ~k ~depth:ghw_depth t
      | (Language.Fo | Language.Fo_k _) as lang ->
          Guard.solver_error
            "Cqfeat.generate: %s features are not conjunctive queries"
            (Language.to_string lang)
    end

let classify ?dim lang t eval_db =
  match dim with
  | Some dim -> begin
      match Dim_sep.generate ~dim lang t with
      | Some (stat, c) -> Statistic.induced_labeling stat c eval_db
      | None ->
          Guard.solver_error
            "Cqfeat.classify: %s is not separable within dimension %d"
            (Language.to_string lang) dim
    end
  | None -> begin
      match (lang : Language.t) with
  | Language.Cq_all | Language.Epfo -> Cq_sep.classify t eval_db
  | Language.Cq_atoms { m; p } -> Atoms_sep.classify ~m ?p t eval_db
  | Language.Ghw k -> Ghw_sep.classify ~k t eval_db
      | Language.Fo -> Fo_sep.fo_classify t eval_db
      | Language.Fo_k k -> Pebble_game.fok_classify ~k t eval_db
    end

let apx_classify ~eps lang t eval_db =
  match (lang : Language.t) with
  | Language.Ghw k ->
      let labeling, err = Ghw_sep.apx_classify ~k t eval_db in
      let n = List.length (Db.entities t.Labeling.db) in
      if err > error_budget ~eps n then
        Guard.solver_error
          "Cqfeat.apx_classify: %d errors exceed the eps budget %d" err
          (error_budget ~eps n);
      (labeling, err)
  | Language.Cq_atoms { m; p } -> Atoms_sep.apx_classify ~m ?p ~eps t eval_db
  | Language.Cq_all | Language.Epfo ->
      let relabeling, err = Cq_sep.apx_relabel t in
      let n = List.length (Db.entities t.Labeling.db) in
      if err > error_budget ~eps n then
        Guard.solver_error
          "Cqfeat.apx_classify: %d errors exceed the eps budget %d" err
          (error_budget ~eps n);
      let t' = Labeling.training t.Labeling.db relabeling in
      (Cq_sep.classify t' eval_db, err)
  | (Language.Fo | Language.Fo_k _) as lang ->
      Guard.solver_error "Cqfeat.apx_classify: not supported for %s features"
        (Language.to_string lang)

let min_dimension ?max_dim lang t = Dim_sep.min_dimension ?max_dim lang t

(* --- budgeted variants ---------------------------------------------- *)

let default_budget = function Some b -> b | None -> Budget.installed ()

let separable_b ?budget ?dim lang t =
  Guard.run (default_budget budget) (fun () -> separable ?dim lang t)

let apx_separable_b ?budget ?dim ~eps lang t =
  Guard.run (default_budget budget) (fun () ->
      apx_separable ?dim ~eps lang t)

let generate_b ?budget ?ghw_depth ?dim lang t =
  Guard.run (default_budget budget) (fun () ->
      generate ?ghw_depth ?dim lang t)

let classify_b ?budget ?dim lang t eval_db =
  Guard.run (default_budget budget) (fun () -> classify ?dim lang t eval_db)

let min_dimension_b ?budget ?max_dim lang t =
  Guard.run (default_budget budget) (fun () -> min_dimension ?max_dim lang t)

let apx_classify_b ?budget ~eps lang t eval_db =
  Guard.run (default_budget budget) (fun () -> apx_classify ~eps lang t eval_db)
