type padded = {
  training : Labeling.training;
  eps : Rat.t;
  copies : int;
  padding : int;
  budget : int;
}

let copy_element ~copy e = Elem.tup [ Elem.int copy; e ]

let floor_rat r =
  (* floor for non-negative rationals *)
  Bigint.to_int (Bigint.div (Rat.num r) (Rat.den r))

let pad ~eps (t : Labeling.training) =
  if Rat.sign eps < 0 || Rat.compare eps (Rat.of_ints 1 2) >= 0 then
    invalid_arg "Apx_reduction.pad: eps must lie in [0, 1/2)";
  let n = List.length (Db.entities t.db) in
  let copies = n + 1 in
  (* Find the least even s with budget(s) - s/2 < copies; the
     difference is non-increasing in steps of at most one, and starts
     at budget(0) ≥ 0, so the first s below the threshold still has
     budget(s) ≥ s/2. *)
  let budget_of s = floor_rat (Rat.mul eps (Rat.of_int ((copies * n) + s))) in
  let rec find_s s =
    Budget.tick ~what:"apx pad: padding search" ();
    if budget_of s - (s / 2) < copies then s else find_s (s + 2)
  in
  let padding = find_s 0 in
  let budget = budget_of padding in
  assert (padding / 2 <= budget);
  (* Build the padded database. *)
  let copy_db i = Db.map_elems (copy_element ~copy:i) t.db in
  let db = ref Db.empty in
  for i = 1 to copies do
    Budget.tick ~what:"apx pad: database copies" ();
    db := Db.union !db (copy_db i)
  done;
  let labeled = ref [] in
  for i = 1 to copies do
    Budget.tick ~what:"apx pad: label copies" ();
    List.iter
      (fun (e, l) -> labeled := (copy_element ~copy:i e, l) :: !labeled)
      (Labeling.bindings t.labeling)
  done;
  for j = 1 to padding do
    Budget.tick ~what:"apx pad: padding elements" ();
    let p = Elem.sym (Printf.sprintf "pad_%d" j) in
    db := Db.add (Fact.make_l "pad" [ p ]) (Db.add_entity p !db);
    labeled :=
      (p, if j mod 2 = 0 then Labeling.Pos else Labeling.Neg) :: !labeled
  done;
  let training = Labeling.training !db (Labeling.of_list !labeled) in
  { training; eps; copies; padding; budget }
