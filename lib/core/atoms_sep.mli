(** Separability with a bounded number of feature atoms (Section 4 and
    Sections 6.3/7.2 of the paper).

    The decision procedure is the constructive one of Proposition 4.1:
    materialize the statistic [Π_all] of {e all} feature queries in
    CQ[m] (resp. CQ[m,p]) over the relation symbols of the data, map
    entities to vectors, and test linear separability by LP. The
    running time is [|D|^c · 2^{q(k)}] — polynomial in the data for a
    fixed maximal arity [k], exponential in [k] — which is exactly the
    FPT shape of Corollary 4.2 that the `prop41` benches sweep.
    Everything here is constructive, so feature generation and
    classification (and their approximate variants) come for free. *)

(** [all_features ~m ?p db] is the statistic of all CQ[m] (or CQ[m,p])
    feature queries over the relations of [db], up to isomorphism. *)
val all_features : m:int -> ?p:int -> Db.t -> Statistic.t

(** [pruned_features ~m ?p t] drops features whose indicator column
    over the training entities duplicates an earlier one — an
    equivalence-preserving (for separability of [t]) reduction. *)
val pruned_features : m:int -> ?p:int -> Labeling.training -> Statistic.t

(** [separable ~m ?p t] decides CQ[m]-Sep (CQ[m,p]-Sep with [p]). *)
val separable : m:int -> ?p:int -> Labeling.training -> bool

(** [separable_b ?budget ~m ?p t] is {!separable} under [budget]
    (default: the ambient budget); resource exhaustion becomes a
    structured [Error]. *)
val separable_b :
  ?budget:Budget.t -> m:int -> ?p:int -> Labeling.training ->
  (bool, Guard.failure) result

(** [generate ~m ?p t] returns a separating pair [(Π, Λ)] built from
    the pruned full statistic. *)
val generate :
  m:int -> ?p:int -> Labeling.training -> (Statistic.t * Linsep.classifier) option

(** [classify ~m ?p t eval_db] — CQ[m]-Cls: labels [eval_db] by the
    generated pair.
    @raise Invalid_argument if [t] is not CQ[m]-separable. *)
val classify : m:int -> ?p:int -> Labeling.training -> Db.t -> Labeling.t

(** [min_errors ~m ?p ?cap t] is the minimum training error achievable
    with CQ[m] features — the CQ[m]-ApxSep objective. NP-hard in the
    data (Prop 7.2(2)); exact search, optionally capped. *)
val min_errors :
  m:int -> ?p:int -> ?cap:int -> Labeling.training ->
  (int * Statistic.t * Linsep.classifier) option

(** [apx_separable ~m ?p ~eps t] decides CQ[m]-ApxSep. *)
val apx_separable : m:int -> ?p:int -> eps:Rat.t -> Labeling.training -> bool

(** [apx_classify ~m ?p ~eps t eval_db] — CQ[m]-ApxCls: classify with a
    statistic and classifier achieving minimal training error; returns
    the labeling and that error.
    @raise Invalid_argument if no classifier meets the [eps] budget. *)
val apx_classify :
  m:int -> ?p:int -> eps:Rat.t -> Labeling.training -> Db.t -> Labeling.t * int

(** Budgeted counterparts of the entry points above, in the style of
    {!separable_b}: each runs under the given budget (default: the
    ambient one) and converts resource exhaustion into a structured
    [Error]. *)

val pruned_features_b :
  ?budget:Budget.t -> m:int -> ?p:int -> Labeling.training ->
  (Statistic.t, Guard.failure) result

val generate_b :
  ?budget:Budget.t -> m:int -> ?p:int -> Labeling.training ->
  ((Statistic.t * Linsep.classifier) option, Guard.failure) result

val classify_b :
  ?budget:Budget.t -> m:int -> ?p:int -> Labeling.training -> Db.t ->
  (Labeling.t, Guard.failure) result

val min_errors_b :
  ?budget:Budget.t -> m:int -> ?p:int -> ?cap:int -> Labeling.training ->
  ((int * Statistic.t * Linsep.classifier) option, Guard.failure) result

val apx_separable_b :
  ?budget:Budget.t -> m:int -> ?p:int -> eps:Rat.t -> Labeling.training ->
  (bool, Guard.failure) result

val apx_classify_b :
  ?budget:Budget.t -> m:int -> ?p:int -> eps:Rat.t -> Labeling.training ->
  Db.t -> (Labeling.t * int, Guard.failure) result

(** {2 Sharded variants}

    The CQ[m] candidate space is the first {!Shardexec} client:
    workers evaluate the indicator columns of contiguous slices of
    the feature list, and the order-dependent column dedupe and LP
    run sequentially in the parent over the range-ordered merge — so
    each result below is byte-identical to its sequential
    counterpart, invariant to worker failures and completion order. *)

val pruned_features_sharded :
  sharding:Shardexec.plan -> ?budget:Budget.t -> m:int -> ?p:int ->
  Labeling.training -> (Statistic.t, Guard.failure) result
(** Sharded {!pruned_features}: feature enumeration and dedupe in the
    parent, column evaluation fanned out per shard. *)

val separable_sharded :
  sharding:Shardexec.plan -> ?budget:Budget.t -> m:int -> ?p:int ->
  Labeling.training -> (bool, Guard.failure) result
(** Sharded {!separable}: same verdict as [separable ~m ?p]. *)

val min_errors_sharded :
  sharding:Shardexec.plan -> ?budget:Budget.t -> m:int -> ?p:int ->
  ?cap:int -> Labeling.training ->
  ((int * Statistic.t * Linsep.classifier) option, Guard.failure) result
(** Sharded {!min_errors}: sharded column evaluation, sequential
    exact min-error search over the merged statistic. *)
