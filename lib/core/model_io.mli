(** Serialization of trained models (statistic + linear classifier).

    A model is rendered as a line-oriented text file:
    {v
      # cqfeat model v2 crc32 9a3e41c2 len 87
      # cqfeat model v1
      feature x :- R(x)
      feature x :- S(y0), E(x,y0)
      threshold -3
      weight 1/2
      weight -27
    v}
    with one [weight] line per feature, in order. Weights and the
    threshold are exact rationals, so a round-trip is lossless —
    including the bignum weights of the chain classifier.

    The first line is an integrity header covering the rest of the
    file (CRC-32 and byte length); it is a [#] comment, so v1 readers
    parse v2 files unchanged, and headerless v1 files still load here
    (unverified). [save] writes atomically: temp file, fsync, rename,
    directory fsync — a reader never observes a torn file, only the
    old contents or the new. *)

type model = { statistic : Statistic.t; classifier : Linsep.classifier }

exception Parse_error of string

(** [make statistic classifier] validates the dimensions.
    @raise Invalid_argument on a weight/feature count mismatch. *)
val make : Statistic.t -> Linsep.classifier -> model

val to_string : model -> string

(** [to_string_checksummed m] is [to_string m] prefixed with the
    integrity header; this is the on-disk form [save] writes. *)
val to_string_checksummed : model -> string

(** @raise Parse_error on malformed input, including a torn or
    corrupt file whose integrity header no longer matches its body. *)
val of_string : string -> model

(** [save path model] / [load path] — file-level wrappers. [save] is
    atomic and durable (temp + fsync + rename + directory fsync).
    @raise Sys_error or [Unix.Unix_error] on I/O failure.
    @raise Parse_error on malformed, torn, or corrupt input. *)
val save : string -> model -> unit

val load : string -> model

(** [atomic_write path contents] — the durable-replace primitive
    behind [save], exposed for other small state files (e.g. a model
    store's CURRENT pointer) that need the same old-or-new guarantee.
    @raise Unix.Unix_error on I/O failure. *)
val atomic_write : string -> string -> unit

(** Crash seam for durability tests: stages of [atomic_write] in
    order. A test hook may raise or kill the process mid-write; the
    hook is registered runtime state (kind [`Config]) and is never set
    in production. *)
type save_stage = Temp_written | Temp_synced | Renamed | Dir_synced

val set_save_hook : (save_stage -> unit) option -> unit

(** [apply model db] labels the entities of [db] with the model. *)
val apply : model -> Db.t -> Labeling.t
