let hom_preorder db entities =
  let ents = Array.of_list entities in
  let n = Array.length ents in
  let m = Array.make_matrix n n false in
  let known = Array.make_matrix n n false in
  let set i j v =
    if not known.(i).(j) then begin
      known.(i).(j) <- true;
      m.(i).(j) <- v
    end
  in
  (* The homomorphism preorder is reflexive and transitive; settle
     forced arcs before running searches, as in Cover_game.preorder. *)
  (* cqlint: allow R1 — reflexive pass bounded by the entity count *)
  for i = 0 to n - 1 do
    set i i true
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Budget.tick ~what:"cq sep: hom preorder" ();
      if not known.(i).(j) then begin
        let v = Hom.pointed db [ ents.(i) ] db [ ents.(j) ] in
        set i j v;
        if v then
          for l = 0 to n - 1 do
            Budget.tick ~what:"cq sep: hom preorder closure" ();
            if known.(j).(l) && m.(j).(l) then set i l true;
            if known.(l).(i) && m.(l).(i) then set l j true
          done
      end
    done
  done;
  m

(* Deciding, generating and classifying against the same training all
   start from the same hom preorder — the expensive part — so keep the
   last chain, keyed by physical identity of the training value. The
   cache is published only after [build] completes: an abort mid-way
   (budget, chaos) can never leave a partial chain behind. *)
let chain_cache : (Labeling.training * Preorder_chain.t) option ref = ref None

let () =
  Runtime_state.register ~name:"cq_sep.chain_cache" (fun () ->
      chain_cache := None)

let chain (t : Labeling.training) =
  match !chain_cache with
  | Some (t0, ch) when t0 == t -> ch
  | _ ->
      let entities = Array.of_list (Db.entities t.db) in
      let matrix = hom_preorder t.db (Array.to_list entities) in
      let ch = Preorder_chain.build ~entities ~matrix in
      chain_cache := Some (t, ch);
      ch

let inseparable_witness t =
  match Preorder_chain.consistent_labels (chain t) t.Labeling.labeling with
  | Ok _ -> None
  | Error pair -> Some pair

let separable t = inseparable_witness t = None

let generate ?(minimize = false) (t : Labeling.training) =
  let ch = chain t in
  match Preorder_chain.consistent_labels ch t.labeling with
  | Error _ -> None
  | Ok labels ->
      let feature rep =
        let q = Cq.of_pointed_db (t.db, rep) in
        if minimize then Cq.core q else q
      in
      let stat = List.map feature (Array.to_list ch.Preorder_chain.reps) in
      Some (stat, Preorder_chain.classifier ch labels)

let classify (t : Labeling.training) eval_db =
  let ch = chain t in
  match Preorder_chain.consistent_labels ch t.labeling with
  | Error _ ->
      invalid_arg "Cq_sep.classify: training database is not CQ-separable"
  | Ok labels ->
      let arrow rep f = Hom.pointed t.db [ rep ] eval_db [ f ] in
      List.fold_left
        (fun acc (f, l) -> Labeling.set f l acc)
        Labeling.empty
        (Preorder_chain.classify ~arrow ch labels (Db.entities eval_db))

let apx_relabel (t : Labeling.training) =
  let ch = chain t in
  let labels, disagreement = Preorder_chain.majority_labels ch t.labeling in
  let relabeling =
    Array.to_list ch.Preorder_chain.members
    |> List.mapi (fun i cls -> List.map (fun e -> (e, labels.(i))) cls)
    |> List.concat |> Labeling.of_list
  in
  (relabeling, disagreement)

let apx_separable ~eps (t : Labeling.training) =
  let _, disagreement = apx_relabel t in
  let n = List.length (Db.entities t.db) in
  (* separable with error eps iff disagreement ≤ eps·n *)
  Rat.compare (Rat.of_int disagreement) (Rat.mul eps (Rat.of_int n)) <= 0

(* --- budgeted variants and the graceful-degradation ladder ---------- *)

let default_budget = function Some b -> b | None -> Budget.installed ()

let separable_b ?budget t =
  Guard.run (default_budget budget) (fun () -> separable t)

let apx_relabel_b ?budget t =
  Guard.run (default_budget budget) (fun () -> apx_relabel t)

let chain_b ?budget t = Guard.run (default_budget budget) (fun () -> chain t)

let inseparable_witness_b ?budget t =
  Guard.run (default_budget budget) (fun () -> inseparable_witness t)

let generate_b ?budget ?minimize t =
  Guard.run (default_budget budget) (fun () -> generate ?minimize t)

let classify_b ?budget t eval_db =
  Guard.run (default_budget budget) (fun () -> classify t eval_db)

let apx_separable_b ?budget ~eps t =
  Guard.run (default_budget budget) (fun () -> apx_separable ~eps t)

type provenance =
  | Exact
  | Degraded of Language.t
  | Approximate of Rat.t
  | Gave_up of Guard.failure

type ladder_result = { answer : bool option; provenance : provenance }

let pp_provenance fmt = function
  | Exact -> Format.pp_print_string fmt "exact"
  | Degraded lang ->
      Format.fprintf fmt "degraded to %s" (Language.to_string lang)
  | Approximate slack ->
      Format.fprintf fmt "approximate (slack %s)" (Rat.to_string slack)
  | Gave_up f -> Format.fprintf fmt "gave up: %s" (Guard.failure_to_string f)

let decide_with_fallback ?budget ?(degrade = true) ?(rungs = [ 3; 2; 1 ])
    ?(runner = Guard.runner) ?sharding t =
  let b = default_budget budget in
  (* One absolute deadline bounds the whole ladder; fuel is refilled
     per rung so a failed exact attempt does not starve the cheaper
     fallbacks. The runner decides how each rung executes: in-process
     Guard.run (default), a forked worker (Isolate.runner), or either
     wrapped in a retry policy (Guard.retrying). With [sharding], the
     CQ[m] rungs fan their candidate spaces out across Shardexec fork
     workers instead — the exact rung (a single chain construction
     with no per-feature candidate space) still goes through the
     runner. Sharded rungs answer byte-identically to sequential
     ones, so the ladder's verdict and provenance are unchanged. *)
  let attempt f = runner.Guard.run (Budget.refresh b) f in
  let sharded =
    match sharding with
    | Some plan when plan.Shardexec.shards > 1 -> Some plan
    | _ -> None
  in
  let rung_separable m =
    match sharded with
    | Some plan ->
        Atoms_sep.separable_sharded ~sharding:plan ~budget:(Budget.refresh b)
          ~m t
    | None -> attempt (fun () -> Atoms_sep.separable ~m t)
  in
  (* Final rung: minimal training error achievable with CQ[1]
     features, reported as a misclassified fraction. A slack of zero
     certifies CQ-separability (CQ[1] ⊆ CQ); positive slack is a
     best-effort lower signal, not a refutation. *)
  let slack_of me =
    let n = List.length (Db.entities t.Labeling.db) in
    match me with
    | Some (err, _, _) -> Rat.of_ints err (max n 1)
    | None -> Rat.one
  in
  let slack_rung () =
    let outcome =
      match sharded with
      | Some plan -> begin
          match
            Atoms_sep.min_errors_sharded ~sharding:plan
              ~budget:(Budget.refresh b) ~m:1 t
          with
          | Ok me -> Ok (slack_of me)
          | Error _ as e -> e
        end
      | None -> attempt (fun () -> slack_of (Atoms_sep.min_errors ~m:1 t))
    in
    match outcome with
    | Ok slack ->
        { answer = Some (Rat.is_zero slack); provenance = Approximate slack }
    | Error f -> { answer = None; provenance = Gave_up f }
  in
  (* cqlint: allow R1 — recursion bounded by the rung list *)
  let rec down = function
    | [] -> slack_rung ()
    | m :: rest -> begin
        match rung_separable m with
        | Ok ans ->
            {
              answer = Some ans;
              provenance = Degraded (Language.Cq_atoms { m; p = None });
            }
        | Error f when Guard.is_resource_failure f -> down rest
        | Error f -> { answer = None; provenance = Gave_up f }
      end
  in
  match attempt (fun () -> separable t) with
  | Ok ans -> { answer = Some ans; provenance = Exact }
  | Error f when (not degrade) || not (Guard.is_resource_failure f) ->
      { answer = None; provenance = Gave_up f }
  | Error _ -> down rungs
