type t = {
  reps : Elem.t array;
  members : Elem.t list array;
  class_below : bool array array;
}

let build ~entities ~matrix =
  let n = Array.length entities in
  (* Group mutually-related entities; class ids in discovery order. *)
  let class_id = Array.make n (-1) in
  let rep_of_class = ref [] in
  let m = ref 0 in
  for i = 0 to n - 1 do
    if class_id.(i) < 0 then begin
      let cid = !m in
      incr m;
      rep_of_class := !rep_of_class @ [ i ];
      for j = i to n - 1 do
        Budget.tick ~what:"chain: class grouping" ();
        if class_id.(j) < 0 && matrix.(i).(j) && matrix.(j).(i) then
          class_id.(j) <- cid
      done
    end
  done;
  let m = !m in
  let rep_idx = Array.of_list !rep_of_class in
  let below0 = Array.make_matrix m m false in
  for a = 0 to m - 1 do
    for b = 0 to m - 1 do
      Budget.tick ~what:"chain: class order" ();
      below0.(a).(b) <- matrix.(rep_idx.(a)).(rep_idx.(b))
    done
  done;
  let members0 = Array.make m [] in
  for j = n - 1 downto 0 do
    Budget.tick ~what:"chain: member collection" ();
    members0.(class_id.(j)) <- entities.(j) :: members0.(class_id.(j))
  done;
  (* Kahn topological sort of the class DAG (strict part of ≼). *)
  let order = ref [] in
  let placed = Array.make m false in
  for _ = 1 to m do
    let pick = ref (-1) in
    for a = m - 1 downto 0 do
      if not placed.(a) then begin
        let ready = ref true in
        for b = 0 to m - 1 do
          Budget.tick ~what:"chain: topological sort" ();
          if (not placed.(b)) && b <> a && below0.(b).(a) then ready := false
        done;
        if !ready then pick := a
      end
    done;
    assert (!pick >= 0);
    placed.(!pick) <- true;
    order := !pick :: !order
  done;
  let order = Array.of_list (List.rev !order) in
  let reps = Array.map (fun a -> entities.(rep_idx.(a))) order in
  let members = Array.map (fun a -> members0.(a)) order in
  let class_below = Array.make_matrix m m false in
  for x = 0 to m - 1 do
    for y = 0 to m - 1 do
      Budget.tick ~what:"chain: class order" ();
      class_below.(x).(y) <- below0.(order.(x)).(order.(y))
    done
  done;
  { reps; members; class_below }

let class_of t e =
  let m = Array.length t.reps in
  (* cqlint: allow R1 — scan bounded by the class count *)
  let rec go i =
    if i >= m then raise Not_found
    else if List.exists (Elem.equal e) t.members.(i) then i
    else go (i + 1)
  in
  go 0

let consistent_labels t labeling =
  let m = Array.length t.reps in
  let labels = Array.make m Labeling.Pos in
  let witness = ref None in
  for i = 0 to m - 1 do
    Budget.tick ~what:"chain: label check" ();
    match t.members.(i) with
    | [] -> assert false
    | first :: rest ->
        let l0 = Labeling.get first labeling in
        labels.(i) <- l0;
        List.iter
          (fun e ->
            if
              !witness = None
              && not (Labeling.label_equal (Labeling.get e labeling) l0)
            then witness := Some (first, e))
          rest
  done;
  match !witness with Some pair -> Error pair | None -> Ok labels

let majority_labels t labeling =
  let m = Array.length t.reps in
  let labels = Array.make m Labeling.Pos in
  let disagreement = ref 0 in
  for i = 0 to m - 1 do
    Budget.tick ~what:"chain: majority labels" ();
    let balance =
      List.fold_left
        (fun acc e -> acc + Labeling.label_sign (Labeling.get e labeling))
        0 t.members.(i)
    in
    let l = if balance >= 0 then Labeling.Pos else Labeling.Neg in
    labels.(i) <- l;
    List.iter
      (fun e ->
        if not (Labeling.label_equal (Labeling.get e labeling) l) then
          incr disagreement)
      t.members.(i)
  done;
  (labels, !disagreement)

let classifier t labels =
  Linsep.chain_classifier ~labels ~below:(fun j i -> t.class_below.(j).(i))

let vector_of ~arrow t x =
  Array.map (fun rep -> if arrow rep x then 1 else -1) t.reps

let classify ~arrow t labels xs =
  let c = classifier t labels in
  List.map (fun x -> (x, Linsep.classify c (vector_of ~arrow t x))) xs

(* Graphviz rendering of the class DAG: nodes are equivalence classes
   (labeled by representative and size), edges the covering relation
   of the strict order. *)
let to_dot ?labels t =
  let m = Array.length t.reps in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph classes {\n  rankdir=BT;\n";
  (* cqlint: allow R1 — rendering pass bounded by the class count *)
  for i = 0 to m - 1 do
    let label_mark =
      match labels with
      | Some ls ->
          if Labeling.label_equal ls.(i) Labeling.Pos then " (+)" else " (-)"
      | None -> ""
    in
    Buffer.add_string buf
      (Printf.sprintf "  c%d [label=\"%s%s x%d%s\"];\n" i
         (Elem.to_string t.reps.(i))
         (if List.length t.members.(i) > 1 then "…" else "")
         (List.length t.members.(i))
         label_mark)
  done;
  (* covering edges: j < i with j ≼ i and no intermediate class *)
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if j <> i && t.class_below.(j).(i) then begin
        let covered = ref false in
        for l = 0 to m - 1 do
          Budget.tick ~what:"chain: dot rendering" ();
          if
            l <> i && l <> j && t.class_below.(j).(l) && t.class_below.(l).(i)
          then covered := true
        done;
        if not !covered then
          Buffer.add_string buf (Printf.sprintf "  c%d -> c%d;\n" j i)
      end
    done
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
