(** Unified entry point: the separability, feature-generation,
    classification and approximate-separability problems of
    "Regularizing Conjunctive Features for Classification" (PODS 2019),
    dispatching on the feature language.

    The per-language engines (with their complexity profiles, faithful
    to Table 1 of the paper):
    - {!Language.Cq_all} / {!Language.Epfo} — hom-equivalence machinery
      ({!Cq_sep}); Sep is coNP-flavored, generation polynomial-size.
    - {!Language.Cq_atoms} — enumeration + LP ({!Atoms_sep}); FPT in
      the arity.
    - {!Language.Ghw} — cover-game machinery ({!Ghw_sep}); Sep/Cls in
      PTIME, generation exponential.
    - {!Language.Fo} — isomorphism machinery ({!Fo_sep});
      GI-complete, dimension collapses to 1.
    With [?dim] the bounded-dimension variants Sep[ℓ] ({!Dim_sep})
    are used — exponential searches, as Theorem 6.6 demands. *)

(** [separable ?dim lang t] — [L]-Sep (or [L]-Sep[ℓ] when [dim] is
    given). *)
val separable : ?dim:int -> Language.t -> Labeling.training -> bool

(** [apx_separable ?dim ~eps lang t] — [L]-ApxSep (or [L]-ApxSep[ℓ]):
    may an [eps] fraction of the training entities be misclassified? *)
val apx_separable : ?dim:int -> eps:Rat.t -> Language.t -> Labeling.training -> bool

(** [generate ?ghw_depth ?dim lang t] — feature generation: a statistic
    and classifier separating [t], when they exist. For [Ghw k] the
    features are depth-[ghw_depth] (default 2) unravelings — consult
    {!Unravel.node_count} before raising the depth. With [dim] the
    statistic has at most [dim] features, realized through QBE
    explanations ({!Dim_sep.generate}).
    @raise Budget.Exhausted with [Solver_error] for [Fo]/[Fo_k] (FO
    features are not CQs; FO separability/classification never needs
    materialized features here). *)
val generate :
  ?ghw_depth:int -> ?dim:int -> Language.t -> Labeling.training ->
  (Statistic.t * Linsep.classifier) option

(** [classify ?dim lang t eval_db] — [L]-Cls (or [L]-Cls[ℓ] with
    [dim]): label the entities of [eval_db] consistently with some
    separating statistic for [t]. For [Ghw k] without [dim] this is
    Algorithm 1 and materializes nothing; with [dim] a ≤[dim]-feature
    statistic is generated and applied.
    @raise Budget.Exhausted with [Solver_error] if [t] is not
    [L]-separable (within the bound). *)
val classify : ?dim:int -> Language.t -> Labeling.training -> Db.t -> Labeling.t

(** [apx_classify ~eps lang t eval_db] — [L]-ApxCls: labeling of
    [eval_db] plus the training error incurred.
    @raise Budget.Exhausted with [Solver_error] if [t] is not
    [L]-separable with error [eps], or for [Fo]. *)
val apx_classify :
  eps:Rat.t -> Language.t -> Labeling.training -> Db.t -> Labeling.t * int

(** [min_dimension ?max_dim lang t] — least statistic dimension that
    separates [t] (bounded search). *)
val min_dimension : ?max_dim:int -> Language.t -> Labeling.training -> int option

(** {1 Budgeted variants}

    Each [_b] function runs its unbudgeted counterpart under a
    {!Budget.t} (default: the ambient installed budget) and always
    returns: deadline or fuel exhaustion, recursion/size limits, and
    solver errors surface as a structured [Error] instead of a hang
    or an exception. *)

val separable_b :
  ?budget:Budget.t -> ?dim:int -> Language.t -> Labeling.training ->
  (bool, Guard.failure) result

val apx_separable_b :
  ?budget:Budget.t -> ?dim:int -> eps:Rat.t -> Language.t ->
  Labeling.training -> (bool, Guard.failure) result

val generate_b :
  ?budget:Budget.t -> ?ghw_depth:int -> ?dim:int -> Language.t ->
  Labeling.training ->
  ((Statistic.t * Linsep.classifier) option, Guard.failure) result

val classify_b :
  ?budget:Budget.t -> ?dim:int -> Language.t -> Labeling.training -> Db.t ->
  (Labeling.t, Guard.failure) result

val min_dimension_b :
  ?budget:Budget.t -> ?max_dim:int -> Language.t -> Labeling.training ->
  (int option, Guard.failure) result

val apx_classify_b :
  ?budget:Budget.t -> eps:Rat.t -> Language.t -> Labeling.training -> Db.t ->
  (Labeling.t * int, Guard.failure) result
