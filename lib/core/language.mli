(** Feature-language specifications used across the unified API. *)

type t =
  | Cq_all  (** all conjunctive queries *)
  | Cq_atoms of { m : int; p : int option }
      (** CQ[m]: at most [m] atoms; with [p] set, CQ[m,p] (each
          variable occurring at most [p] times) *)
  | Ghw of int  (** GHW(k): generalized hypertree width at most [k] *)
  | Fo  (** all first-order feature queries *)
  | Fo_k of int
      (** the k-variable fragment FO_k — dimension-collapses like FO
          (Cor 8.5); separability via the k-pebble game *)
  | Epfo  (** existential-positive FO — collapses to CQ (Prop 8.3) *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** [of_string s] parses the CLI syntax — [cq], [cq[m]], [cq[m,p]],
    [ghw(k)], [fo], [foK] (e.g. [fo2]), [epfo]; case-insensitive,
    surrounding whitespace ignored. All numeric parameters must be
    at least 1; the error message names the offending parameter or
    token. *)
val of_string : string -> (t, string) result

(** [member lang q] checks syntactic membership of a feature CQ in the
    CQ-based languages ([Fo] and [Epfo] contain every CQ). For
    [Ghw k] this computes the exact ghw (exponential; small queries
    only). *)
val member : t -> Cq.t -> bool
