let subsets_of_entities entities =
  let n = List.length entities in
  if n > 20 then
    Guard.solver_error
      "Dim_sep.subsets_of_entities: %d entities exceed the 20-entity cap — \
       the subset enumeration behind Sep[ℓ] for CQ/GHW(k) is exponential \
       (Theorem 6.6)"
      n;
  let arr = Array.of_list entities in
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let s = ref Elem.Set.empty in
    for i = 0 to n - 1 do
      Budget.tick ~what:"dim: subset enumeration" ();
      if mask land (1 lsl i) <> 0 then s := Elem.Set.add arr.(i) !s
    done;
    out := !s :: !out
  done;
  List.rev !out

let realizable_sets lang (t : Labeling.training) =
  let entities = Db.entities t.db in
  match (lang : Language.t) with
  | Fo | Fo_k _ | Epfo ->
      Guard.solver_error
        "Dim_sep.realizable_sets: %s collapses to dimension 1 (Prop 8.1 / \
         Cor 8.5); use Fo_sep or Pebble_game"
        (Language.to_string lang)
  | Cq_atoms { m; p } ->
      let features = Atoms_sep.all_features ~m ?p t.db in
      let seen = Hashtbl.create 64 in
      List.filter_map
        (fun q ->
          let s = Elem.Set.of_list (Cq.eval q t.db) in
          let key = Elem.Set.elements s in
          if Elem.Set.is_empty s || Hashtbl.mem seen key then None
          else begin
            Hashtbl.add seen key ();
            Some s
          end)
        features
  | Cq_all | Ghw _ ->
      let decide pos neg =
        let inst = Qbe.make t.db ~pos ~neg in
        match lang with
        | Cq_all -> Qbe.cq_decide inst
        | Ghw k -> Qbe.ghw_decide ~k inst
        | Cq_atoms _ | Fo | Fo_k _ | Epfo -> assert false
      in
      List.filter
        (fun s ->
          let pos = Elem.Set.elements s in
          let neg =
            List.filter (fun e -> not (Elem.Set.mem e s)) entities
          in
          decide pos neg)
        (subsets_of_entities entities)

let columns_of_sets ~sets entities =
  let ents = Array.of_list entities in
  List.map
    (fun s -> (s, Array.map (fun e -> Elem.Set.mem e s) ents))
    sets

(* Deduplicate candidate columns up to complement: a feature and its
   pointwise negation induce the same separable collections (negate the
   weight). *)
let dedupe_columns cols =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (_, col) ->
      let key = Array.to_list col in
      let co_key = List.map not key in
      if Hashtbl.mem seen key || Hashtbl.mem seen co_key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    cols

let witness_with_sets ?(seed_numeric = false) ~dim ~sets
    (t : Labeling.training) =
  let entities = Db.entities t.db in
  let labels =
    Array.of_list (List.map (fun e -> Labeling.get e t.labeling) entities)
  in
  let n = Array.length labels in
  let cols = Array.of_list (dedupe_columns (columns_of_sets ~sets entities)) in
  let ncols = Array.length cols in
  let examples_of chosen =
    List.init n (fun i ->
        {
          Linsep.vec =
            Array.of_list
              (List.map
                 (fun c -> if (snd cols.(c)).(i) then 1 else -1)
                 chosen);
          label = labels.(i);
        })
  in
  let exception Found of int list * Linsep.classifier in
  let check chosen =
    (* Numeric tier with exact certification; escalates internally. *)
    match Nsep.separable (examples_of chosen) with
    | Some c -> raise (Found (chosen, c))
    | None -> ()
  in
  (* l1-seeded candidate: fit one sparsified numeric separator over
     ALL candidate columns and try its support first. A pure
     search-order heuristic — [check] raises on success and the
     exhaustive sweep below runs unchanged otherwise, so the verdict
     is identical with or without it. *)
  let seed () =
    if seed_numeric && ncols > 0 && n > 0 then begin
      Budget.tick ~what:"dim: numeric support seeding" ();
      let xs =
        Array.init n (fun i ->
            Array.init ncols (fun c ->
                if (snd cols.(c)).(i) then 1.0 else -1.0))
      in
      let ys =
        Array.init n (fun i -> float_of_int (Labeling.label_sign labels.(i)))
      in
      let config = { Cg.default_config with Cg.l1 = 0.1 } in
      let sup = Cg.support (Cg.fit ~config ~xs ~ys ()) in
      let cap = min dim ncols in
      match List.filteri (fun i _ -> i < cap) sup with
      | [] -> ()
      | chosen -> check chosen
    end
  in
  (* Sizes 0..dim: combinations of column indices. *)
  let rec combos size start acc =
    Budget.tick ~what:"dim: feature combination search" ();
    if size = 0 then check (List.rev acc)
    else
      for c = start to ncols - size do
        combos (size - 1) (c + 1) (c :: acc)
      done
  in
  match
    seed ();
    for size = 0 to min dim ncols do
      combos size 0 []
    done
  with
  | () -> None
  | exception Found (chosen, c) ->
      Some (List.map (fun i -> fst cols.(i)) chosen, c)

let separable_with_sets ?seed_numeric ~dim ~sets t =
  witness_with_sets ?seed_numeric ~dim ~sets t <> None

(* Minimum training error over statistics of at most [dim] of the
   candidate sets: exhaustive over the (deduplicated) combinations,
   exact min-error LP search inside. Drives the ApxSep[ℓ] variants
   (Prop 7.3(3)). *)
let min_errors_with_sets ~dim ~sets ?cap (t : Labeling.training) =
  let entities = Db.entities t.db in
  let labels =
    Array.of_list (List.map (fun e -> Labeling.get e t.labeling) entities)
  in
  let n = Array.length labels in
  let cols = Array.of_list (dedupe_columns (columns_of_sets ~sets entities)) in
  let ncols = Array.length cols in
  let examples_of chosen =
    List.init n (fun i ->
        {
          Linsep.vec =
            Array.of_list
              (List.map
                 (fun c -> if (snd cols.(c)).(i) then 1 else -1)
                 chosen);
          label = labels.(i);
        })
  in
  let best = ref None in
  let consider chosen =
    let cap' =
      match (!best, cap) with
      | Some (b, _), _ -> b - 1
      | None, Some c -> c
      | None, None -> n
    in
    if cap' >= 0 then begin
      match Linsep.min_errors_exact ~cap:cap' (examples_of chosen) with
      | Some (err, cl) ->
          let sets' = List.map (fun c -> fst cols.(c)) chosen in
          best := Some (err, (sets', cl))
      | None -> ()
    end
  in
  let rec combos size start acc =
    Budget.tick ~what:"dim: feature combination search" ();
    if size = 0 then consider (List.rev acc)
    else
      for c = start to ncols - size do
        combos (size - 1) (c + 1) (c :: acc)
      done
  in
  for size = 0 to min dim ncols do
    combos size 0 []
  done;
  match !best with
  | Some (err, (sets', cl)) -> Some (err, sets', cl)
  | None -> None

let separable_with_sets_of t lang dim =
  let sets = realizable_sets lang t in
  separable_with_sets ~dim ~sets t

let separable ~dim lang (t : Labeling.training) =
  match (lang : Language.t) with
  | Fo ->
      (* Dimension collapse (Prop 8.1): one feature suffices whenever
         any statistic separates. *)
      dim >= 1 && Fo_sep.fo_separable t
  | Fo_k k ->
      (* Dimension collapse for FO_k (Cor 8.5). *)
      dim >= 1 && Pebble_game.fok_separable ~k t
  | Epfo ->
      (* ∃FO⁺ agrees with CQ on separability (Prop 8.3(2)) and on
         realizable indicator sets (both are closed the same way on
         finite databases). *)
      separable_with_sets_of t Language.Cq_all dim
  | (Cq_all | Cq_atoms _ | Ghw _) as lang -> separable_with_sets_of t lang dim

(* Realize an indicator set S as an actual feature query of the
   language: a QBE explanation for (D, S, η∖S). *)
let realize_set ?(ghw_depth_cap = 8) lang (t : Labeling.training) s =
  let entities = Db.entities t.db in
  let pos = Elem.Set.elements s in
  let neg = List.filter (fun e -> not (Elem.Set.mem e s)) entities in
  let inst = Qbe.make t.db ~pos ~neg in
  match (lang : Language.t) with
  | Cq_all | Epfo -> Qbe.cq_explanation ~minimize:true inst
  | Cq_atoms { m; p } -> Qbe.cqm_explanation ~m ?max_var_occ:p inst
  | Ghw k ->
      (* Unravel the positive product until its indicator set over the
         training database is exactly S (Prop 5.6-style; depth-bounded
         with a cap). *)
      let product, point = Qbe.product_of_positives inst in
      let rec try_depth depth =
        Budget.tick ~what:"dim: unraveling depth search" ();
        if depth > ghw_depth_cap then None
        else begin
          let q = Unravel.unravel ~k ~depth (product, point) in
          let sel = Elem.Set.of_list (Eval_engine.eval q t.db) in
          if Elem.Set.equal sel s then Some q else try_depth (depth + 1)
        end
      in
      try_depth 1
  | Fo | Fo_k _ ->
      Guard.solver_error "Dim_sep.realize_set: %s features are not \
                          conjunctive queries"
        (Language.to_string lang)

let generate ?ghw_depth_cap ~dim lang (t : Labeling.training) =
  let search_lang =
    match (lang : Language.t) with Epfo -> Language.Cq_all | l -> l
  in
  let sets = realizable_sets search_lang t in
  match witness_with_sets ~dim ~sets t with
  | None -> None
  | Some (chosen, classifier) ->
      let features =
        List.map
          (fun s ->
            match realize_set ?ghw_depth_cap search_lang t s with
            | Some q -> q
            | None ->
                Guard.solver_error
                  "Dim_sep.generate: a realizable set of %d entities could \
                   not be materialized (raise ghw_depth_cap)"
                  (Elem.Set.cardinal s))
          chosen
      in
      Some (features, classifier)

let min_dimension ?max_dim lang (t : Labeling.training) =
  let n = List.length (Db.entities t.db) in
  let max_dim = match max_dim with Some d -> d | None -> n in
  let rec go d =
    Budget.tick ~what:"dim: dimension search" ();
    if d > max_dim then None
    else if separable ~dim:d lang t then Some d
    else go (d + 1)
  in
  go 0

(* --- Lemma 6.5: QBE ≤p Sep[ℓ] ---------------------------------------- *)

let qbe_to_sep ~l (inst : Qbe.instance) =
  if l < 1 then Guard.solver_error "Dim_sep.qbe_to_sep: l must be >= 1, got %d" l;
  let cminus = Elem.sym "qbe_cminus" in
  let cs = List.init (l - 1) (fun i -> Elem.sym (Printf.sprintf "qbe_c%d" i)) in
  let db =
    List.fold_left
      (fun db (i, ci) ->
        Db.add (Fact.make_l (Printf.sprintf "kappa%d" i) [ ci ]) db)
      inst.db
      (List.mapi (fun i ci -> (i, ci)) cs)
  in
  (* Every domain element becomes an entity. *)
  let db =
    Elem.Set.fold Db.add_entity (Db.domain db) (Db.add_entity cminus db)
  in
  let labeled =
    List.map (fun e -> (e, Labeling.Pos)) (inst.pos @ cs)
    @ List.map (fun e -> (e, Labeling.Neg)) (cminus :: inst.neg)
  in
  Labeling.training db (Labeling.of_list labeled)

(* --- budgeted variants ---------------------------------------------- *)

let default_budget = function Some b -> b | None -> Budget.installed ()

let separable_b ?budget ~dim lang t =
  Guard.run (default_budget budget) (fun () -> separable ~dim lang t)

let realizable_sets_b ?budget lang t =
  Guard.run (default_budget budget) (fun () -> realizable_sets lang t)

(* --- sharded variants ------------------------------------------------ *)

(* Second Shardexec client: the candidate indicator sets of the CQ[m]
   branch. Workers evaluate contiguous slices of the feature-query
   list into entity sets; the order-dependent empty-set filter and
   dedupe run sequentially in the parent over the range-ordered merge,
   so the set list is byte-identical to {!realizable_sets}. Languages
   whose candidate space is not a per-feature map (the subset
   enumeration of CQ/GHW) fall back to the sequential path under the
   same budget. *)

let set_slice fq db { Shardexec.lo; hi } =
  let out = ref [] in
  for i = hi - 1 downto lo do
    Budget.tick ~what:"dim sep: set slice" ();
    out := Elem.Set.of_list (Cq.eval fq.(i) db) :: !out
  done;
  !out

let dedupe_sets sets =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun s ->
      let key = Elem.Set.elements s in
      if Elem.Set.is_empty s || Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some s
      end)
    sets

let realizable_sets_sharded ~sharding ?budget lang (t : Labeling.training) =
  let b = default_budget budget in
  match (lang : Language.t) with
  | Cq_atoms { m; p } -> begin
      match Guard.run b (fun () -> Atoms_sep.all_features ~m ?p t.db) with
      | Error _ as e -> e
      | Ok features -> begin
          let fq = Array.of_list features in
          match
            Shardexec.run ~plan:sharding ~budget:b ~n:(Array.length fq)
              ~compute:(set_slice fq t.db)
              ~merge:(fun a c -> a @ c)
              ()
          with
          | Error _ as e -> e
          | Ok sets -> Ok (dedupe_sets sets)
        end
    end
  | _ -> Guard.run b (fun () -> realizable_sets lang t)

let separable_sharded ~sharding ?budget ~dim lang t =
  match (lang : Language.t) with
  | Cq_atoms _ -> begin
      match realizable_sets_sharded ~sharding ?budget lang t with
      | Error _ as e -> e
      | Ok sets ->
          Guard.run (default_budget budget) (fun () ->
              separable_with_sets ~dim ~sets t)
    end
  | _ ->
      (* Dimension collapses and subset enumerations have no
         per-feature candidate space to shard. *)
      Guard.run (default_budget budget) (fun () -> separable ~dim lang t)

let separable_with_sets_b ?budget ?seed_numeric ~dim ~sets t =
  Guard.run (default_budget budget) (fun () ->
      separable_with_sets ?seed_numeric ~dim ~sets t)

let witness_with_sets_b ?budget ?seed_numeric ~dim ~sets t =
  Guard.run (default_budget budget) (fun () ->
      witness_with_sets ?seed_numeric ~dim ~sets t)

let min_errors_with_sets_b ?budget ~dim ~sets ?cap t =
  Guard.run (default_budget budget) (fun () ->
      min_errors_with_sets ~dim ~sets ?cap t)

let realize_set_b ?budget ?ghw_depth_cap lang t s =
  Guard.run (default_budget budget) (fun () ->
      realize_set ?ghw_depth_cap lang t s)

let generate_b ?budget ?ghw_depth_cap ~dim lang t =
  Guard.run (default_budget budget) (fun () ->
      generate ?ghw_depth_cap ~dim lang t)

let min_dimension_b ?budget ?max_dim lang t =
  Guard.run (default_budget budget) (fun () -> min_dimension ?max_dim lang t)
