(** The padding reduction from exact to approximate separability
    (Proposition 7.1): for every fixed ε ∈ [0, 1/2), [L]-Sep reduces in
    polynomial time to (L, ε)-ApxSep.

    Construction: replicate the training database [t] times as disjoint
    isomorphic copies (copies of an entity are indistinguishable by any
    CQ, so a classifier errs on them in blocks of [t]) and add [s]
    mutually-indistinguishable padding entities (each with a single
    fact over a fresh unary relation [pad]), labeled half positive and
    half negative so that any classifier is forced to err on exactly
    [s/2] of them. The parameters satisfy

    [s/2 ≤ budget < s/2 + t]  where  [budget = ⌊ε·(t·n + s)⌋],

    so the ε-budget is consumed by the forced padding errors and no
    original entity (cost [t] ≥ budget − s/2 + 1) may be misclassified:
    the padded instance is [L]-separable with error ε iff the original
    is [L]-separable exactly. *)

type padded = {
  training : Labeling.training;  (** the padded training database *)
  eps : Rat.t;  (** the fixed error fraction the reduction targets *)
  copies : int;  (** t: number of disjoint copies *)
  padding : int;  (** s: number of padding entities *)
  budget : int;  (** ⌊ε·|η|⌋ of the padded instance *)
}

(** [pad ~eps t] builds the reduction instance.
    @raise Invalid_argument unless [0 ≤ eps < 1/2]. *)
(* cqlint: allow R4 — deterministic polynomial construction that ticks
   internally; no search to interrupt *)
val pad : eps:Rat.t -> Labeling.training -> padded

(** [copy_element ~copy e] is the renamed element of [e] in copy
    [copy] (for tests inspecting the construction). *)
val copy_element : copy:int -> Elem.t -> Elem.t
