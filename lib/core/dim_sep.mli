(** Separability with statistics of bounded dimension (Section 6).

    The engine is the (L, ℓ)-separability test of Lemma 6.3, organized
    around {e realizable indicator sets}: a set [S ⊆ η(D)] is
    [L]-realizable when some [q ∈ L] has [q(D) = S] — which is exactly
    the QBE question for [(D, S, η(D)∖S)]. A training database is
    [L]-separable by at most [ℓ] features iff some ≤ℓ realizable sets
    give linearly separable vectors.

    For [CQ[m]] the realizable sets come from enumeration (NP-complete
    overall, Theorem 6.10); for [CQ] and [GHW(k)] every subset of
    [η(D)] is tested through the product-based QBE criteria —
    exponentially many subsets, matching the
    coNEXPTIME/EXPTIME-completeness of Theorem 6.6. Keep [|η(D)|]
    small.

    Also provided: the polynomial-time reduction of Lemma 6.5 from QBE
    to [L]-Sep[ℓ]. *)

(** [realizable_sets lang t] is the distinct nonempty [L]-realizable
    indicator sets over [t]'s entities (the empty set is excluded: a
    constantly-negative feature never helps separation).
    @raise Budget.Exhausted with [Solver_error] for [Fo]/[Epfo] (use
    {!Fo_sep}; FO dimension collapses anyway, Prop 8.1). *)
val realizable_sets : Language.t -> Labeling.training -> Elem.Set.t list

(** [separable_with_sets ~dim ~sets t] decides whether at most [dim] of
    the candidate indicator [sets] make [t]'s labeling linearly
    separable (combinatorial search + LP). *)
val separable_with_sets :
  ?seed_numeric:bool ->
  dim:int -> sets:Elem.Set.t list -> Labeling.training -> bool

(** [witness_with_sets ~dim ~sets t] additionally returns a choice of
    sets and a classifier.

    [seed_numeric] (default [false]) first fits one l1-sparsified
    numeric separator ({!Cg.fit}) over all candidate columns and tries
    its {!Cg.support} as the opening combination — a search-order
    heuristic only: on a miss the exhaustive sweep runs unchanged, so
    the verdict is identical either way (the witness found first may
    differ). *)
val witness_with_sets :
  ?seed_numeric:bool ->
  dim:int -> sets:Elem.Set.t list -> Labeling.training ->
  (Elem.Set.t list * Linsep.classifier) option

(** [min_errors_with_sets ~dim ~sets ?cap t] is the minimum training
    error over statistics of at most [dim] of the candidate [sets],
    with a witnessing choice and classifier — the ApxSep[ℓ] objective
    (Prop 7.3(3)). [cap] bounds the acceptable error. *)
val min_errors_with_sets :
  dim:int -> sets:Elem.Set.t list -> ?cap:int -> Labeling.training ->
  (int * Elem.Set.t list * Linsep.classifier) option

(** [separable ~dim lang t] decides [L]-Sep[ℓ] / [L]-Sep[*] with
    [ℓ = dim]. *)
val separable : dim:int -> Language.t -> Labeling.training -> bool

(** [separable_b ?budget ~dim lang t] is {!separable} under [budget]
    (default: the ambient budget); resource exhaustion becomes a
    structured [Error]. *)
val separable_b :
  ?budget:Budget.t -> dim:int -> Language.t -> Labeling.training ->
  (bool, Guard.failure) result

(** [realize_set ?ghw_depth_cap lang t s] materializes a feature query
    of [lang] whose indicator set over [t]'s training database is
    exactly [s] — the constructive step behind the (L,ℓ)-separability
    test. For [Ghw k] the query is an unraveling of the positive
    product, deepened until the indicator matches (or [None] past the
    cap). *)
val realize_set :
  ?ghw_depth_cap:int -> Language.t -> Labeling.training -> Elem.Set.t ->
  Cq.t option

(** [generate ?ghw_depth_cap ~dim lang t] — bounded-dimension feature
    generation: a statistic of at most [dim] features of [lang] and a
    separating classifier, when they exist.
    @raise Budget.Exhausted with [Solver_error] if a chosen set resists
    materialization within the depth cap (GHW only). *)
val generate :
  ?ghw_depth_cap:int -> dim:int -> Language.t -> Labeling.training ->
  (Cq.t list * Linsep.classifier) option

(** [min_dimension ?max_dim lang t] is the least dimension separating
    [t] (searching up to [max_dim], default [|η(D)|]); [None] if no
    dimension up to the bound suffices. *)
val min_dimension : ?max_dim:int -> Language.t -> Labeling.training -> int option

(** [qbe_to_sep ~l inst] is the Lemma 6.5 reduction: builds a training
    database over the schema extended with [ℓ-1] fresh unary symbols
    [kappa_i] and fresh constants [cminus, c_1, ..., c_{ℓ-1}] such that
    [inst] has an [L]-explanation iff the result is [L]-separable by a
    statistic with at most [l] features. Requires the lemma's input
    restriction [S⁻ = dom(D) ∖ S⁺] (entities aside).
    @raise Budget.Exhausted with [Solver_error] if [l < 1]. *)
val qbe_to_sep : l:int -> Qbe.instance -> Labeling.training

(** Budgeted counterparts of the entry points above, in the style of
    {!separable_b}: each runs under the given budget (default: the
    ambient one) and converts resource exhaustion — and the structured
    solver errors above — into an [Error]. *)

val realizable_sets_b :
  ?budget:Budget.t -> Language.t -> Labeling.training ->
  (Elem.Set.t list, Guard.failure) result

val separable_with_sets_b :
  ?budget:Budget.t -> ?seed_numeric:bool ->
  dim:int -> sets:Elem.Set.t list -> Labeling.training ->
  (bool, Guard.failure) result

val witness_with_sets_b :
  ?budget:Budget.t -> ?seed_numeric:bool ->
  dim:int -> sets:Elem.Set.t list -> Labeling.training ->
  ((Elem.Set.t list * Linsep.classifier) option, Guard.failure) result

val min_errors_with_sets_b :
  ?budget:Budget.t -> dim:int -> sets:Elem.Set.t list -> ?cap:int ->
  Labeling.training ->
  ((int * Elem.Set.t list * Linsep.classifier) option, Guard.failure) result

val realize_set_b :
  ?budget:Budget.t -> ?ghw_depth_cap:int -> Language.t -> Labeling.training ->
  Elem.Set.t -> (Cq.t option, Guard.failure) result

val generate_b :
  ?budget:Budget.t -> ?ghw_depth_cap:int -> dim:int -> Language.t ->
  Labeling.training ->
  ((Cq.t list * Linsep.classifier) option, Guard.failure) result

val min_dimension_b :
  ?budget:Budget.t -> ?max_dim:int -> Language.t -> Labeling.training ->
  (int option, Guard.failure) result

(** {2 Sharded variants}

    The indicator-matrix columns of the [CQ[m]] branch are a
    {!Shardexec} client: workers evaluate contiguous slices of the
    feature-query list into entity sets, and the order-dependent
    empty-set filter and dedupe run sequentially in the parent over
    the range-ordered merge — byte-identical results to the
    sequential path. Other languages fall back to the sequential
    computation under the same budget. *)

val realizable_sets_sharded :
  sharding:Shardexec.plan -> ?budget:Budget.t -> Language.t ->
  Labeling.training -> (Elem.Set.t list, Guard.failure) result
(** Sharded {!realizable_sets} (CQ[m] branch fanned out). *)

val separable_sharded :
  sharding:Shardexec.plan -> ?budget:Budget.t -> dim:int -> Language.t ->
  Labeling.training -> (bool, Guard.failure) result
(** Sharded {!separable}: same verdict as [separable ~dim lang]. *)
