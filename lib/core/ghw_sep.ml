let chain ~k (t : Labeling.training) =
  let entities = Array.of_list (Db.entities t.db) in
  let matrix = Cover_game.preorder ~k t.db (Array.to_list entities) in
  Preorder_chain.build ~entities ~matrix

let inseparable_witness ~k t =
  match Preorder_chain.consistent_labels (chain ~k t) t.Labeling.labeling with
  | Ok _ -> None
  | Error pair -> Some pair

let separable ~k t = inseparable_witness ~k t = None

let classify ~k (t : Labeling.training) eval_db =
  let ch = chain ~k t in
  match Preorder_chain.consistent_labels ch t.labeling with
  | Error _ ->
      invalid_arg "Ghw_sep.classify: training database is not GHW(k)-separable"
  | Ok labels ->
      let arrow rep f = Cover_game.holds1 ~k (t.db, rep) (eval_db, f) in
      List.fold_left
        (fun acc (f, l) -> Labeling.set f l acc)
        Labeling.empty
        (Preorder_chain.classify ~arrow ch labels (Db.entities eval_db))

let generate ~k ~depth (t : Labeling.training) =
  let ch = chain ~k t in
  match Preorder_chain.consistent_labels ch t.labeling with
  | Error _ -> None
  | Ok labels ->
      let feature rep = Unravel.unravel ~k ~depth (t.db, rep) in
      let stat = List.map feature (Array.to_list ch.Preorder_chain.reps) in
      Some (stat, Preorder_chain.classifier ch labels)

let relabeling_of ch labels =
  Array.to_list ch.Preorder_chain.members
  |> List.mapi (fun i cls -> List.map (fun e -> (e, labels.(i))) cls)
  |> List.concat |> Labeling.of_list

let apx_relabel ~k (t : Labeling.training) =
  let ch = chain ~k t in
  let labels, disagreement = Preorder_chain.majority_labels ch t.labeling in
  (relabeling_of ch labels, disagreement)

let apx_separable ~k ~eps (t : Labeling.training) =
  let _, disagreement = apx_relabel ~k t in
  let n = List.length (Db.entities t.db) in
  Rat.compare (Rat.of_int disagreement) (Rat.mul eps (Rat.of_int n)) <= 0

let apx_classify ~k (t : Labeling.training) eval_db =
  let ch = chain ~k t in
  let labels, disagreement = Preorder_chain.majority_labels ch t.labeling in
  let arrow rep f = Cover_game.holds1 ~k (t.db, rep) (eval_db, f) in
  let labeling =
    List.fold_left
      (fun acc (f, l) -> Labeling.set f l acc)
      Labeling.empty
      (Preorder_chain.classify ~arrow ch labels (Db.entities eval_db))
  in
  (labeling, disagreement)

(* --- budgeted variants ---------------------------------------------- *)

let default_budget = function Some b -> b | None -> Budget.installed ()

let separable_b ?budget ~k t =
  Guard.run (default_budget budget) (fun () -> separable ~k t)

let chain_b ?budget ~k t =
  Guard.run (default_budget budget) (fun () -> chain ~k t)

let inseparable_witness_b ?budget ~k t =
  Guard.run (default_budget budget) (fun () -> inseparable_witness ~k t)

let classify_b ?budget ~k t eval_db =
  Guard.run (default_budget budget) (fun () -> classify ~k t eval_db)

let generate_b ?budget ~k ~depth t =
  Guard.run (default_budget budget) (fun () -> generate ~k ~depth t)

let apx_relabel_b ?budget ~k t =
  Guard.run (default_budget budget) (fun () -> apx_relabel ~k t)

let apx_separable_b ?budget ~k ~eps t =
  Guard.run (default_budget budget) (fun () -> apx_separable ~k ~eps t)

let apx_classify_b ?budget ~k t eval_db =
  Guard.run (default_budget budget) (fun () -> apx_classify ~k t eval_db)
