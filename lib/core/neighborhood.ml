(* Canonical entity neighborhoods for evaluation caching.

   A connected feature query with m atoms can only probe facts within
   m hops of the entity it is evaluated at: in any homomorphism
   sending the free variable to [e], an atom at j atom-hops from the
   free variable lands on a fact whose nearest element sits at
   distance <= j from [e] in the fact graph. So for a model whose
   features are all connected, the verdict at [e] is a function of the
   radius-r fact ball around [e] alone, where r is the largest atom
   count — two entities with isomorphic pointed balls classify
   identically, across databases. [key] serializes that ball under a
   deterministic injective renaming: equal keys imply isomorphic
   pointed balls and hence equal verdicts. Canonicity is best effort
   (ties between structurally similar facts fall back to original
   element names), which can only cost cache hits, never correctness.

   Disconnected features break the locality argument, so
   [model_radius] refuses them and callers fall back to a
   database-identity key. *)

let what = "neighborhood: ball walk"

(* Atom connectivity over shared variables, anchored at the free
   variable. [Cq.atoms] excludes the mandatory [eta(free)] atom, so an
   atomless query is trivially connected (and 0-local). *)
let connected q =
  let atoms = Array.of_list (Cq.atoms q) in
  let n = Array.length atoms in
  if n = 0 then true
  else begin
    let reached_atoms = Array.make n false in
    let reached_vars = ref (Elem.Set.singleton (Cq.free q)) in
    let progress = ref true in
    while !progress do
      Budget.tick ~what:"neighborhood: connectivity" ();
      progress := false;
      Array.iteri
        (fun i atom ->
          if not reached_atoms.(i) then begin
            let vars = Fact.elems atom in
            if not (Elem.Set.disjoint vars !reached_vars) then begin
              reached_atoms.(i) <- true;
              reached_vars := Elem.Set.union vars !reached_vars;
              progress := true
            end
          end)
        atoms
    done;
    Array.for_all Fun.id reached_atoms
  end

let model_radius (stat : Statistic.t) =
  if List.for_all connected stat then
    Some (List.fold_left (fun acc q -> max acc (Cq.num_atoms q)) 1 stat)
  else None

(* The fact ball: every fact whose nearest element is at distance
   < radius from [e], found by BFS over the element/fact incidence
   graph. Returns the facts paired with their minimal element
   distance, plus the element-distance map. *)
let ball ~radius db e =
  let dist = ref (Elem.Map.singleton e 0) in
  let facts = ref Fact.Map.empty in
  let frontier = ref [ e ] in
  let d = ref 0 in
  while !frontier <> [] && !d < radius do
    let layer = List.sort Elem.compare !frontier in
    frontier := [];
    List.iter
      (fun el ->
        List.iter
          (fun f ->
            Budget.tick ~what ();
            if not (Fact.Map.mem f !facts) then facts := Fact.Map.add f !d !facts;
            Array.iter
              (fun arg ->
                if not (Elem.Map.mem arg !dist) then begin
                  dist := Elem.Map.add arg (!d + 1) !dist;
                  frontier := arg :: !frontier
                end)
              (Fact.args f))
          (Db.facts_with_elem el db))
      layer;
    incr d
  done;
  (!facts, !dist)

(* Renaming-invariant-up-to-ties sort rank for a fact: its minimal
   element distance, relation, and the argument distance profile. *)
let rank dist f =
  let args = Fact.args f in
  let profile =
    Array.to_list
      (Array.map
         (fun a ->
           match Elem.Map.find_opt a dist with Some d -> d | None -> max_int)
         args)
  in
  let min_d = List.fold_left min max_int (max_int :: profile) in
  (min_d, Fact.rel f, Array.length args, profile)

let key ~radius db e =
  let facts, dist = ball ~radius db e in
  let ordered =
    List.sort
      (fun (f1, _) (f2, _) ->
        let c = compare (rank dist f1) (rank dist f2) in
        if c <> 0 then c else Fact.compare f1 f2)
      (Fact.Map.bindings facts)
  in
  (* Injective ids in traversal order; the entity is always n0, so the
     key pins the distinguished point of the ball. *)
  let ids = ref (Elem.Map.singleton e 0) in
  let next = ref 1 in
  let id_of el =
    match Elem.Map.find_opt el !ids with
    | Some i -> i
    | None ->
        let i = !next in
        ids := Elem.Map.add el i !ids;
        incr next;
        i
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "r%d|" radius);
  List.iter
    (fun (f, _) ->
      Budget.tick ~what ();
      Buffer.add_string buf (Fact.rel f);
      Buffer.add_char buf '(';
      Array.iteri
        (fun i a ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int (id_of a)))
        (Fact.args f);
      Buffer.add_string buf ");")
    ordered;
  Buffer.contents buf
