type t =
  | Cq_all
  | Cq_atoms of { m : int; p : int option }
  | Ghw of int
  | Fo
  | Fo_k of int
  | Epfo

let to_string = function
  | Cq_all -> "CQ"
  | Cq_atoms { m; p = None } -> Printf.sprintf "CQ[%d]" m
  | Cq_atoms { m; p = Some p } -> Printf.sprintf "CQ[%d,%d]" m p
  | Ghw k -> Printf.sprintf "GHW(%d)" k
  | Fo -> "FO"
  | Fo_k k -> Printf.sprintf "FO_%d" k
  | Epfo -> "∃FO+"

let pp fmt l = Format.pp_print_string fmt (to_string l)

(* Validated parsing for the CLI syntax: cq, cq[m], cq[m,p], ghw(k),
   fo, foK, epfo. Every rejection names the offending part; no
   catch-all handlers. *)

let parse_positive ~what ~lang s =
  match int_of_string_opt (String.trim s) with
  | None ->
      Error
        (Printf.sprintf "%s: %s %S is not an integer" lang what s)
  | Some n when n < 1 ->
      Error (Printf.sprintf "%s: %s must be >= 1 (got %d)" lang what n)
  | Some n -> Ok n

let of_string s0 =
  let s = String.lowercase_ascii (String.trim s0) in
  let len = String.length s in
  let has_prefix p = len > String.length p && String.sub s 0 (String.length p) = p in
  let bracketed ~prefix ~close =
    (* body of e.g. "cq[...]" or "ghw(...)"; delimiters validated *)
    let start = String.length prefix in
    if s.[len - 1] <> close then
      Error
        (Printf.sprintf "%S: missing closing %C after %S" s0 close prefix)
    else Ok (String.sub s start (len - start - 1))
  in
  match s with
  | "" -> Error "empty language specification"
  | "cq" -> Ok Cq_all
  | "fo" -> Ok Fo
  | "epfo" -> Ok Epfo
  | _ when has_prefix "cq[" -> begin
      match bracketed ~prefix:"cq[" ~close:']' with
      | Error _ as e -> e
      | Ok body -> begin
          match String.split_on_char ',' body with
          | [ m ] -> begin
              match parse_positive ~what:"atom bound m" ~lang:"cq[m]" m with
              | Error _ as e -> e
              | Ok m -> Ok (Cq_atoms { m; p = None })
            end
          | [ m; p ] -> begin
              match parse_positive ~what:"atom bound m" ~lang:"cq[m,p]" m with
              | Error _ as e -> e
              | Ok m -> begin
                  match
                    parse_positive ~what:"occurrence bound p" ~lang:"cq[m,p]" p
                  with
                  | Error _ as e -> e
                  | Ok p -> Ok (Cq_atoms { m; p = Some p })
                end
            end
          | _ ->
              Error
                (Printf.sprintf
                   "cq[...]: expected one or two parameters, got %S" body)
        end
    end
  | _ when has_prefix "ghw(" -> begin
      match bracketed ~prefix:"ghw(" ~close:')' with
      | Error _ as e -> e
      | Ok body -> begin
          match parse_positive ~what:"width bound k" ~lang:"ghw(k)" body with
          | Error _ as e -> e
          | Ok k -> Ok (Ghw k)
        end
    end
  | _ when has_prefix "fo" -> begin
      match
        parse_positive ~what:"variable bound k" ~lang:"foK"
          (String.sub s 2 (len - 2))
      with
      | Error _ as e -> e
      | Ok k -> Ok (Fo_k k)
    end
  | _ ->
      Error
        (Printf.sprintf
           "unknown language %S (expected cq, cq[m], cq[m,p], ghw(k), fo, \
            foK, epfo)"
           s0)

let member lang q =
  match lang with
  | Cq_all | Fo | Epfo -> true
  | Fo_k k ->
      (* a CQ is a k-variable query iff it can be written with k
         variables; a sufficient syntactic criterion is having at most
         k variables, which is what feature CQs built by this library
         report *)
      Elem.Set.cardinal (Cq.vars q) <= k
  | Cq_atoms { m; p } -> begin
      Cq.num_atoms q <= m
      && match p with None -> true | Some p -> Cq.max_var_occurrences q <= p
    end
  | Ghw k -> Cq_decomp.ghw_le q k
