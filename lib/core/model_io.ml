type model = { statistic : Statistic.t; classifier : Linsep.classifier }

exception Parse_error of string

let make statistic classifier =
  if Array.length classifier.Linsep.weights <> List.length statistic then
    invalid_arg "Model_io.make: weight/feature count mismatch";
  { statistic; classifier }

let rat_to_string = Rat.to_string

let rat_of_string s =
  match String.split_on_char '/' (String.trim s) with
  | [ n ] -> Rat.of_bigint (Bigint.of_string n)
  | [ n; d ] -> Rat.make (Bigint.of_string n) (Bigint.of_string d)
  | _ -> raise (Parse_error (Printf.sprintf "bad rational %S" s))

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — same
   parameters as the WAL's frame checksum; the check value of
   "123456789" is 0xCBF43926, asserted by the registry validator.
   Private copy: core cannot depend on the service library. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         (* cqlint: allow R1 — eight shifts per table entry, fixed bound *)
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let () =
  Runtime_state.register ~name:"core.model_io.crc_table"
    ~validate:(fun () -> crc32 "123456789" = 0xCBF43926)
    (fun () -> ())

let body_to_string m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# cqfeat model v1\n";
  List.iter
    (fun q ->
      Buffer.add_string buf "feature ";
      Buffer.add_string buf (Cq.to_string q);
      Buffer.add_char buf '\n')
    m.statistic;
  Buffer.add_string buf
    (Printf.sprintf "threshold %s\n" (rat_to_string m.classifier.Linsep.threshold));
  Array.iter
    (fun w ->
      Buffer.add_string buf (Printf.sprintf "weight %s\n" (rat_to_string w)))
    m.classifier.Linsep.weights;
  Buffer.contents buf

let to_string = body_to_string

(* The integrity header is a comment line, so a v1 reader parses a v2
   file unchanged; it covers the whole body (length and CRC), so a v2
   reader detects truncation even when the tear happens to fall on a
   line boundary and the remnant would still parse. It comes first —
   not as a footer — because a torn tail is exactly the part of the
   file most likely to be missing. *)
let header_prefix = "# cqfeat model v2 crc32 "

let to_string_checksummed m =
  let body = body_to_string m in
  Printf.sprintf "%s%08x len %d\n%s" header_prefix (crc32 body)
    (String.length body) body

(* [verify_integrity s] checks the v2 header when present. Returns
   unit for legacy (v1, headerless) strings: those predate the
   checksum and still load, just unverified. *)
let verify_integrity s =
  let plen = String.length header_prefix in
  if String.length s >= plen && String.sub s 0 plen = header_prefix then begin
    let line_end =
      match String.index_opt s '\n' with
      | Some i -> i
      | None -> raise (Parse_error "torn model file: header line truncated")
    in
    let rest = String.sub s plen (line_end - plen) in
    let crc, declared_len =
      try Scanf.sscanf rest "%8x len %d%!" (fun c n -> (c, n))
      with Scanf.Scan_failure _ | Failure _ | End_of_file ->
        raise (Parse_error "corrupt model file: malformed integrity header")
    in
    let body = String.sub s (line_end + 1) (String.length s - line_end - 1) in
    if String.length body <> declared_len then
      raise
        (Parse_error
           (Printf.sprintf
              "torn model file: header declares %d body bytes, found %d"
              declared_len (String.length body)));
    if crc32 body <> crc then
      raise (Parse_error "model checksum mismatch (torn or corrupt file)")
  end

let of_string s =
  verify_integrity s;
  let features = ref [] in
  let weights = ref [] in
  let threshold = ref None in
  List.iteri
    (fun idx raw ->
      let line_no = idx + 1 in
      let fail msg =
        raise (Parse_error (Printf.sprintf "line %d: %s" line_no msg))
      in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else begin
        match String.index_opt line ' ' with
        | None -> fail "expected 'keyword argument'"
        | Some i ->
            let keyword = String.sub line 0 i in
            let arg = String.sub line (i + 1) (String.length line - i - 1) in
            (match keyword with
            | "feature" -> begin
                match Cq_parse.parse arg with
                | q -> features := q :: !features
                | exception Cq_parse.Parse_error msg ->
                    fail ("bad feature: " ^ msg)
              end
            | "threshold" -> begin
                if !threshold <> None then fail "duplicate threshold";
                match rat_of_string arg with
                | r -> threshold := Some r
                | exception _ -> fail "bad threshold"
              end
            | "weight" -> begin
                match rat_of_string arg with
                | r -> weights := r :: !weights
                | exception _ -> fail "bad weight"
              end
            | _ -> fail (Printf.sprintf "unknown keyword %S" keyword))
      end)
    (String.split_on_char '\n' s);
  let statistic = List.rev !features in
  let weights = Array.of_list (List.rev !weights) in
  let threshold =
    match !threshold with
    | Some t -> t
    | None -> raise (Parse_error "missing threshold line")
  in
  if Array.length weights <> List.length statistic then
    raise (Parse_error "weight/feature count mismatch");
  { statistic; classifier = { Linsep.weights; threshold } }

(* Crash seam for the durability tests: the hook fires at each stage
   crossing of an atomic write, and a test hook that SIGKILLs the
   process at the k-th crossing lets a sweep interrupt a publish at
   every intermediate durability state. Production never sets it. *)
type save_stage = Temp_written | Temp_synced | Renamed | Dir_synced

let save_hook : (save_stage -> unit) option ref = ref None
let set_save_hook h = save_hook := h

let () =
  Runtime_state.register ~name:"core.model_io.save_hook" ~kind:`Config
    (fun () -> save_hook := None)

let cross stage = match !save_hook with Some f -> f stage | None -> ()

(* Distinguishes temp files from concurrent writers in the same
   process; uniqueness across processes comes from the pid. *)
let tmp_seq = ref 0

let () =
  Runtime_state.register ~name:"core.model_io.tmp_seq" (fun () -> tmp_seq := 0)

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let pos = ref 0 in
  (* cqlint: allow R1 — each round trips Unix.write, which either
     advances pos or raises; bounded by the buffer length *)
  while !pos < n do
    pos := !pos + Unix.write fd b !pos (n - !pos)
  done

(* Directory fsync makes the rename itself durable. Some filesystems
   refuse fsync on a directory fd (EINVAL); the write is still atomic
   there, just not yet durable, which matches what the platform can
   promise. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let atomic_write path contents =
  incr tmp_seq;
  let tmp = Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) !tmp_seq in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC; O_CLOEXEC ] 0o644 in
  (try
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
       (fun () ->
         write_all fd contents;
         cross Temp_written;
         Unix.fsync fd;
         cross Temp_synced)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.rename tmp path;
  cross Renamed;
  fsync_dir (Filename.dirname path);
  cross Dir_synced

let save path m = atomic_write path (to_string_checksummed m)

let load path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string s

let apply m db = Statistic.induced_labeling m.statistic m.classifier db
