type model = { statistic : Statistic.t; classifier : Linsep.classifier }

exception Parse_error of string

let make statistic classifier =
  if Array.length classifier.Linsep.weights <> List.length statistic then
    invalid_arg "Model_io.make: weight/feature count mismatch";
  { statistic; classifier }

let rat_to_string = Rat.to_string

let rat_of_string s =
  match String.split_on_char '/' (String.trim s) with
  | [ n ] -> Rat.of_bigint (Bigint.of_string n)
  | [ n; d ] -> Rat.make (Bigint.of_string n) (Bigint.of_string d)
  | _ -> raise (Parse_error (Printf.sprintf "bad rational %S" s))

let to_string m =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# cqfeat model v1\n";
  List.iter
    (fun q ->
      Buffer.add_string buf "feature ";
      Buffer.add_string buf (Cq.to_string q);
      Buffer.add_char buf '\n')
    m.statistic;
  Buffer.add_string buf
    (Printf.sprintf "threshold %s\n" (rat_to_string m.classifier.Linsep.threshold));
  Array.iter
    (fun w ->
      Buffer.add_string buf (Printf.sprintf "weight %s\n" (rat_to_string w)))
    m.classifier.Linsep.weights;
  Buffer.contents buf

let of_string s =
  let features = ref [] in
  let weights = ref [] in
  let threshold = ref None in
  List.iteri
    (fun idx raw ->
      let line_no = idx + 1 in
      let fail msg =
        raise (Parse_error (Printf.sprintf "line %d: %s" line_no msg))
      in
      let line = String.trim raw in
      if line = "" || line.[0] = '#' then ()
      else begin
        match String.index_opt line ' ' with
        | None -> fail "expected 'keyword argument'"
        | Some i ->
            let keyword = String.sub line 0 i in
            let arg = String.sub line (i + 1) (String.length line - i - 1) in
            (match keyword with
            | "feature" -> begin
                match Cq_parse.parse arg with
                | q -> features := q :: !features
                | exception Cq_parse.Parse_error msg ->
                    fail ("bad feature: " ^ msg)
              end
            | "threshold" -> begin
                if !threshold <> None then fail "duplicate threshold";
                match rat_of_string arg with
                | r -> threshold := Some r
                | exception _ -> fail "bad threshold"
              end
            | "weight" -> begin
                match rat_of_string arg with
                | r -> weights := r :: !weights
                | exception _ -> fail "bad weight"
              end
            | _ -> fail (Printf.sprintf "unknown keyword %S" keyword))
      end)
    (String.split_on_char '\n' s);
  let statistic = List.rev !features in
  let weights = Array.of_list (List.rev !weights) in
  let threshold =
    match !threshold with
    | Some t -> t
    | None -> raise (Parse_error "missing threshold line")
  in
  if Array.length weights <> List.length statistic then
    raise (Parse_error "weight/feature count mismatch");
  { statistic; classifier = { Linsep.weights; threshold } }

(* Channels are closed on every path, raising ones included, so a
   long-running process whose saves/loads sometimes fail cannot leak
   its fd table away. *)
let save path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (to_string m);
      (* flush inside the protected region: a full disk surfaces as
         Sys_error here rather than being swallowed by the close *)
      flush oc)

let load path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string s

let apply m db = Statistic.induced_labeling m.statistic m.classifier db
