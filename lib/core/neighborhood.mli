(** Canonical entity neighborhoods, the cache key behind serving.

    A connected feature query with [m] atoms only sees facts within
    [m] hops of the entity: the verdict of a model whose features are
    all connected is a function of the pointed radius-[r] fact ball
    alone, for [r] the largest feature atom count. [key] serializes
    that ball under a deterministic injective renaming, so {e equal
    keys imply equal verdicts} — across entities and across databases.
    Canonicity is best effort (structural ties fall back to original
    element names), which can only reduce the hit rate, never
    soundness. *)

(** [connected q] — are the atoms of [q] connected through shared
    variables, anchored at the free variable? *)
val connected : Cq.t -> bool

(** [model_radius stat] is [Some r] with [r >= 1] the locality radius
    of the statistic iff every feature is connected; [None] when some
    feature is disconnected and neighborhood keys would be unsound. *)
val model_radius : Statistic.t -> int option

(** [key ~radius db e] is the canonical serialization of the pointed
    fact ball of radius [radius] around [e]: all facts whose nearest
    element lies within distance [radius - 1]. Runs under the ambient
    {!Budget}. *)
val key : radius:int -> Db.t -> Elem.t -> string
