(** Versioned on-disk model store with crash-only recovery.

    One [v%06d.model] file per published version plus a [CURRENT]
    pointer, every write via {!Model_io}'s atomic durable-replace. A
    crash at any point leaves either the old current version or the
    new one — never a torn file, never a mix — and {!open_} repairs
    the residue (temp files, a dangling pointer) without operator
    input. Version numbers are monotone across the store's history;
    rollback repoints, it never renumbers. *)

type t

(** [open_ ~dir] creates [dir] if needed, removes unfinished temp
    files, validates every version file (checksum included) and
    resolves the current version: the one CURRENT names if valid,
    else the newest valid version, else none. *)
val open_ : dir:string -> t

val dir : t -> string

(** Valid versions, ascending. *)
val list : t -> int list

val current_version : t -> int option

(** [load t v] loads a listed version.
    @raise Invalid_argument when [v] is not in [list t].
    @raise Model_io.Parse_error if the file was corrupted since
    [open_]. *)
val load : t -> int -> Model_io.model

(** [publish t m] durably writes [m] as a fresh version, then flips
    CURRENT to it. Returns the new version number. *)
val publish : t -> Model_io.model -> int

(** [rollback t] repoints CURRENT at the newest version older than
    the current one. *)
val rollback : t -> (int, string) result
