(** A supervised pool of {!Isolate} workers, one process per running
    job.

    The supervisor never blocks in normal operation: {!start} forks,
    {!poll} reaps whatever has finished, and {!fds} plus
    {!next_kill_deadline} tell a select loop when to wake. Workers past
    their deadline are SIGKILLed by the underlying {!Isolate} machinery
    and every exit path reaps the child, so the pool cannot accumulate
    zombies. *)

type outcome = (string, Guard.failure) result
(** What a job produces: a one-line summary or a structured failure
    (worker infrastructure failures — kill, OOM, undecodable result —
    are folded into the same type). *)

type t

val create : ?pool_size:int -> ?grace:float -> ?retry:int * float -> unit -> t
(** [pool_size] concurrent workers (default 4); [grace] seconds past a
    job's deadline before SIGKILL (default 1.0); [retry] is passed to
    {!Job.execute} as its in-worker retry policy.
    @raise Invalid_argument on a non-positive pool or negative grace. *)

val pool_size : t -> int
val running_count : t -> int
val has_capacity : t -> bool
val running_ids : t -> string list

val start : t -> now:float -> id:string -> deadline:float option ->
  Job.spec -> unit
(** Fork a worker for the job. [deadline] (absolute) caps the worker's
    wall clock; the job's own budget comes from its spec. The worker's
    backoff jitter is seeded from [crc32 id].
    @raise Failure when the pool is full — callers gate on
    {!has_capacity}. *)

type finished = {
  f_id : string;
  f_class : string;
  f_duration : float;
  f_outcome : outcome;
}

val poll : t -> now:float -> finished list
(** Reap every worker that has finished (killing any past its
    deadline), without blocking. The sweep is total: even if reaping
    one worker fails with an exception, the worker is reported as
    finished with a structured error and the rest of the sweep still
    runs, so every slot freed by a burst of simultaneous deaths is
    reclaimed in this one call. *)

val fds : t -> Unix.file_descr list
(** The running workers' result pipes — what the daemon selects on. *)

val next_kill_deadline : t -> float option
(** Earliest absolute time at which some worker becomes killable — an
    upper bound for the select timeout. *)

val drain_await : t -> now:float -> finished list
(** Block until every running worker finishes (each under its own
    deadline), reaping all — the SIGTERM drain path. *)

val abort_all : t -> unit
(** SIGKILL and reap every running worker — the fast-shutdown path.
    Their jobs stay incomplete (journaled as started, not completed),
    so WAL recovery re-runs them. *)
