(* The job service: WAL-journaled admission, supervised execution,
   crash-only recovery.

   Every state transition that must survive a crash is an event in the
   WAL, appended and fsynced *before* the transition is acknowledged:

     Ev_submitted   durable admission — the job will run (or be shed
                    with a journaled reason), even across a SIGKILL
     Ev_started     the job was handed to a worker (recovery treats
                    started-but-not-completed as re-runnable: workers
                    die with the daemon, so at-least-once execution)
     Ev_completed   the job's outcome — journaled before the result is
                    observable, so a result once served never changes
     Ev_shed        the job was dropped, with the structured reason

   Recovery is replay: fold the events, truncate any torn tail, and
   rebuild jobs/queue. Completed and shed jobs keep their terminal
   state (dedup by id — an event replayed twice, or a job completed
   just before the crash, cannot run again); queued and started jobs
   re-enter the queue in original submission order. That yields
   at-least-once execution with exactly-once completion recording.

   Events are Marshal-encoded inside checksummed frames. Specs are
   plain data, so the encoding is stable within a binary; a payload
   Marshal rejects (version skew) is treated exactly like a torn tail:
   the longest decodable prefix wins and the rest is discarded. *)

type state =
  | Queued
  | Running
  | Done of string
  | Failed of string
  | Shed of string

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done s -> "done: " ^ s
  | Failed m -> "failed: " ^ m
  | Shed code -> "shed: " ^ code

type event =
  | Ev_submitted of {
      id : string;
      spec : Job.spec;
      at : float;
      deadline : float option;
    }
  | Ev_started of { id : string; at : float }
  | Ev_completed of { id : string; at : float; outcome : (string, string) result }
  | Ev_shed of { id : string; at : float; code : string }

type jobinfo = {
  ji_id : string;
  ji_spec : Job.spec;
  ji_deadline : float option;
  mutable ji_state : state;
}

type config = {
  wal_path : string;
  pool_size : int;
  queue_capacity : int;
  default_timeout : float option;
  breaker_threshold : int;
  breaker_cooldown : float;
  retries : int;
  retry_backoff : float;
  grace : float;
}

let default_config ~wal_path =
  {
    wal_path;
    pool_size = 4;
    queue_capacity = 64;
    default_timeout = None;
    breaker_threshold = 5;
    breaker_cooldown = 30.0;
    retries = 0;
    retry_backoff = 0.05;
    grace = 1.0;
  }

type recovery = {
  replayed_events : int;
  recovered_completed : int;
  requeued : int;
  shed_on_recovery : int;
  dropped_bytes : int;
}

type t = {
  cfg : config;
  wal : Wal.t;
  jobs : (string, jobinfo) Hashtbl.t;
  mutable submission_order : string list;  (* newest first *)
  mutable seq : int;
  queue : string Jobq.t;  (* payloads are job ids *)
  sup : Supervisor.t;
  breakers : (string, Breaker.t) Hashtbl.t;
  mutable draining : bool;
  mutable avg_duration : float;  (* EWMA of completed-job durations *)
  mutable completed_count : int;
  recovery : recovery;
}

let journal t ev = Wal.append t.wal (Marshal.to_string (ev : event) [])

let breaker t cls =
  match Hashtbl.find_opt t.breakers cls with
  | Some b -> b
  | None ->
      let b =
        Breaker.create ~threshold:t.cfg.breaker_threshold
          ~cooldown:t.cfg.breaker_cooldown ()
      in
      Hashtbl.add t.breakers cls b;
      b

(* Job ids: a monotone sequence number plus a checksum of the spec —
   readable, unique per log, and a stable jitter seed. *)
let make_id seq spec =
  Printf.sprintf "j%06d-%08x" seq
    (Journal_codec.crc32 (Printf.sprintf "%d %s" seq (Job.describe spec)))

let seq_of_id id =
  match String.index_opt id '-' with
  | Some i when i > 1 && id.[0] = 'j' ->
      Option.value ~default:0 (int_of_string_opt (String.sub id 1 (i - 1)))
  | _ -> 0

(* {2 Recovery} *)

let decode_events raw_records =
  (* Stop at the first payload Marshal rejects and report the offset
     where the valid prefix ends — version skew degrades like a torn
     tail instead of crashing recovery. *)
  let rec go acc prev_end = function
    | [] -> List.rev acc, prev_end, false
    | (payload, end_off) :: rest -> begin
        match (Marshal.from_string payload 0 : event) with
        | ev -> go (ev :: acc) end_off rest
        | exception _ -> List.rev acc, prev_end, true
      end
  in
  go [] 0 raw_records

let apply_event jobs order seq = function
  | Ev_submitted { id; spec; deadline; _ } ->
      if not (Hashtbl.mem jobs id) then begin
        Hashtbl.add jobs id
          { ji_id = id; ji_spec = spec; ji_deadline = deadline;
            ji_state = Queued };
        order := id :: !order;
        seq := max !seq (seq_of_id id)
      end
  | Ev_started { id; _ } -> begin
      match Hashtbl.find_opt jobs id with
      (* cqlint: allow R13 — replay: Ev_started is already in the WAL *)
      | Some ji when ji.ji_state = Queued -> ji.ji_state <- Running
      | _ -> ()
    end
  | Ev_completed { id; outcome; _ } -> begin
      match Hashtbl.find_opt jobs id with
      | Some ji -> begin
          (* First completion wins: replaying a duplicated event (or a
             late one after a shed) cannot overwrite a terminal state. *)
          match ji.ji_state with
          | Done _ | Failed _ | Shed _ -> ()
          | Queued | Running ->
              (* cqlint: allow R13 — replay: Ev_completed is already in the WAL *)
              ji.ji_state <-
                (match outcome with Ok s -> Done s | Error m -> Failed m)
        end
      | None -> ()
    end
  | Ev_shed { id; code; _ } -> begin
      match Hashtbl.find_opt jobs id with
      | Some ji -> begin
          match ji.ji_state with
          | Done _ | Failed _ | Shed _ -> ()
          (* cqlint: allow R13 — replay: Ev_shed is already in the WAL *)
          | Queued | Running -> ji.ji_state <- Shed code
        end
      | None -> ()
    end

let validate_config cfg =
  if cfg.pool_size < 1 then invalid_arg "Service.start: pool_size must be >= 1";
  if cfg.queue_capacity < 1 then
    invalid_arg "Service.start: queue_capacity must be >= 1";
  if cfg.breaker_threshold < 1 then
    invalid_arg "Service.start: breaker_threshold must be >= 1";
  if cfg.breaker_cooldown <= 0.0 then
    invalid_arg "Service.start: breaker_cooldown must be > 0";
  if cfg.retries < 0 then invalid_arg "Service.start: retries must be >= 0";
  if cfg.retry_backoff < 0.0 then
    invalid_arg "Service.start: retry_backoff must be >= 0";
  if cfg.grace < 0.0 then invalid_arg "Service.start: grace must be >= 0"

let start cfg =
  validate_config cfg;
  let rep = Wal.replay cfg.wal_path in
  let events, marshal_valid_bytes, marshal_damage = decode_events rep.Wal.records in
  (* Truncate the torn/undecodable tail before reopening for append,
     so new frames land on clean framing. *)
  let effective_valid =
    if marshal_damage then marshal_valid_bytes else rep.Wal.valid_bytes
  in
  let dropped = rep.Wal.total_bytes - effective_valid in
  if dropped > 0 then
    ignore
      (Wal.repair cfg.wal_path
         { rep with
           Wal.valid_bytes = effective_valid;
           damage =
             (match rep.Wal.damage with
             | Some _ as d -> d
             | None -> Some (Journal_codec.Corrupt "undecodable event"));
         });
  let jobs = Hashtbl.create 64 in
  let order = ref [] in
  let seq = ref 0 in
  List.iter (apply_event jobs order seq) events;
  let wal = Wal.open_append cfg.wal_path in
  let now = Budget.Clock.now () in
  let queue = Jobq.create ~capacity:cfg.queue_capacity in
  let retry =
    if cfg.retries > 0 then Some (cfg.retries, cfg.retry_backoff) else None
  in
  let t =
    {
      cfg;
      wal;
      jobs;
      submission_order = !order;
      seq = !seq;
      queue;
      sup = Supervisor.create ~pool_size:cfg.pool_size ~grace:cfg.grace ?retry ();
      breakers = Hashtbl.create 8;
      draining = false;
      avg_duration = 0.0;
      completed_count = 0;
      recovery =
        { replayed_events = List.length events; recovered_completed = 0;
          requeued = 0; shed_on_recovery = 0; dropped_bytes = dropped };
    }
  in
  (* Re-enqueue incomplete jobs in original submission order. Expired
     deadlines are shed now, with the shed journaled like any other. *)
  let completed = ref 0 and requeued = ref 0 and shed = ref 0 in
  List.iter
    (fun id ->
      let ji = Hashtbl.find jobs id in
      match ji.ji_state with
      | Done _ | Failed _ -> incr completed
      | Shed _ -> ()
      | Queued | Running -> begin
          match ji.ji_deadline with
          | Some d when d <= now ->
              journal t (Ev_shed { id; at = now; code = "deadline" });
              ji.ji_state <- Shed "deadline";
              incr shed
          | deadline ->
              (* cqlint: allow R13 — Queued is the state Ev_submitted
                 journaled; requeueing after recovery is idempotent *)
              ji.ji_state <- Queued;
              Jobq.enqueue queue ~id ~deadline ~now id;
              incr requeued
        end)
    (List.rev !order);
  { t with
    recovery =
      { t.recovery with
        recovered_completed = !completed;
        requeued = !requeued;
        shed_on_recovery = !shed;
      };
  }

let recovery t = t.recovery
let config t = t.cfg

(* {2 Admission} *)

let projected_wait t =
  let backlog = Jobq.length t.queue + Supervisor.running_count t.sup in
  if t.avg_duration <= 0.0 then 0.0
  else
    float_of_int backlog *. t.avg_duration
    /. float_of_int (Supervisor.pool_size t.sup)

let submit t ?deadline spec =
  let now = Budget.Clock.now () in
  if t.draining then Error Jobq.Draining
  else
    match Job.validate spec with
    | Error msg -> Error (Jobq.Invalid msg)
    | Ok () ->
        let spec =
          match spec.Job.timeout, t.cfg.default_timeout with
          | None, (Some _ as d) -> { spec with Job.timeout = d }
          | _ -> spec
        in
        let cls = Job.job_class spec in
        let br = breaker t cls in
        if not (Breaker.allow br ~now) then
          Error
            (Jobq.Breaker_open
               { job_class = cls; retry_after = Breaker.retry_after br ~now })
        else begin
          t.seq <- t.seq + 1;
          let id = make_id t.seq spec in
          match
            Jobq.admit t.queue ~now ~projected_wait:(projected_wait t) ~id
              ~deadline id
          with
          | Error _ as err ->
              t.seq <- t.seq - 1;  (* nothing journaled; reuse the seq *)
              err
          | Ok () ->
              (* Durable before acknowledged: once the caller sees the
                 id, the job survives any crash. *)
              journal t (Ev_submitted { id; spec; at = now; deadline });
              Hashtbl.add t.jobs id
                { ji_id = id; ji_spec = spec; ji_deadline = deadline;
                  ji_state = Queued };
              t.submission_order <- id :: t.submission_order;
              Ok id
        end

(* {2 The event-loop step} *)

let record_finished t now (f : Supervisor.finished) =
  (match Hashtbl.find_opt t.jobs f.Supervisor.f_id with
  | None -> ()
  | Some ji -> begin
      match ji.ji_state with
      | Done _ | Failed _ | Shed _ -> ()  (* terminal states stick *)
      | Queued | Running ->
          let outcome =
            match f.Supervisor.f_outcome with
            | Ok s -> Ok s
            | Error failure -> Error (Guard.failure_to_string failure)
          in
          journal t
            (Ev_completed { id = f.Supervisor.f_id; at = now; outcome });
          ji.ji_state <-
            (match outcome with Ok s -> Done s | Error m -> Failed m)
    end);
  let br = breaker t f.Supervisor.f_class in
  (match f.Supervisor.f_outcome with
  | Ok _ -> Breaker.success br
  | Error failure ->
      if Guard.is_resource_failure failure then Breaker.failure br ~now
      else Breaker.success br);
  t.completed_count <- t.completed_count + 1;
  (* EWMA with a short memory: recent durations dominate the projected
     wait used for deadline-aware shedding. *)
  t.avg_duration <-
    (if t.completed_count = 1 then f.Supervisor.f_duration
     else (0.7 *. t.avg_duration) +. (0.3 *. f.Supervisor.f_duration))

let rec dispatch t now =
  if Supervisor.has_capacity t.sup then
    match Jobq.pop_ready t.queue ~now with
    | Jobq.Empty -> ()
    | Jobq.Expired e ->
        journal t (Ev_shed { id = e.Jobq.e_id; at = now; code = "deadline" });
        (match Hashtbl.find_opt t.jobs e.Jobq.e_id with
        | Some ji -> ji.ji_state <- Shed "deadline"
        | None -> ());
        dispatch t now
    | Jobq.Ready e ->
        let id = e.Jobq.e_id in
        (match Hashtbl.find_opt t.jobs id with
        | None -> ()
        | Some ji ->
            journal t (Ev_started { id; at = now });
            ji.ji_state <- Running;
            Supervisor.start t.sup ~now ~id ~deadline:e.Jobq.e_deadline
              ji.ji_spec);
        dispatch t now

let step t =
  let now = Budget.Clock.now () in
  List.iter (record_finished t now) (Supervisor.poll t.sup ~now);
  (* Draining still dispatches: drained means "finish what was durably
     admitted, accept nothing new". *)
  dispatch t now;
  Supervisor.next_kill_deadline t.sup

let wait_fds t = Supervisor.fds t.sup

let idle t = Jobq.is_empty t.queue && Supervisor.running_count t.sup = 0

let drain t = t.draining <- true

let drain_finish t =
  drain t;
  let rec go () =
    let _ = step t in
    if not (idle t) then begin
      let now = Budget.Clock.now () in
      (match Supervisor.drain_await t.sup ~now with
      | [] -> ()
      | finished -> List.iter (record_finished t now) finished);
      if not (idle t) then go ()
    end
  in
  go ()

let close t =
  Supervisor.abort_all t.sup;
  Wal.close t.wal

(* {2 Introspection} *)

let status t id =
  Option.map (fun ji -> ji.ji_state) (Hashtbl.find_opt t.jobs id)

let job_ids t = List.rev t.submission_order

type stats = {
  queued : int;
  running : int;
  done_ : int;
  failed : int;
  shed : int;
  draining : bool;
}

let stats t =
  let queued = ref 0 and running = ref 0 and done_ = ref 0 in
  let failed = ref 0 and shed = ref 0 in
  List.iter
    (fun id ->
      match (Hashtbl.find t.jobs id).ji_state with
      | Queued -> incr queued
      | Running -> incr running
      | Done _ -> incr done_
      | Failed _ -> incr failed
      | Shed _ -> incr shed)
    t.submission_order;
  {
    queued = !queued;
    running = !running;
    done_ = !done_;
    failed = !failed;
    shed = !shed;
    draining = t.draining;
  }
