(* Supervised pool of Isolate workers.

   One worker process per running job, capped at the pool size. The
   supervisor never blocks: [poll] reaps whatever finished (Isolate
   kills anything past its deadline and reaps on every path, so the
   pool cannot leak zombies), and [fds]/[next_kill_deadline] give the
   daemon's select loop exactly what it needs to sleep until something
   can happen.

   The worker computes [Job.execute spec] — itself a [result] — under
   an unlimited outer guard, so the marshaled payload is
   [((string, failure) result, failure) result]; [flatten] collapses
   the two layers (an outer [Error] means the worker infrastructure
   failed: killed, OOM, undecodable). *)

type outcome = (string, Guard.failure) result

type running = {
  r_id : string;
  r_class : string;
  r_started_at : float;
  r_worker : outcome Isolate.worker;
}

type t = {
  s_pool : int;
  s_grace : float;
  s_retry : (int * float) option;
  mutable s_running : running list;  (* newest first; order is not API *)
}

let create ?(pool_size = 4) ?(grace = 1.0) ?retry () =
  if pool_size < 1 then invalid_arg "Supervisor.create: pool_size must be >= 1";
  if grace < 0.0 then invalid_arg "Supervisor.create: grace must be >= 0";
  { s_pool = pool_size; s_grace = grace; s_retry = retry; s_running = [] }

let pool_size t = t.s_pool
let running_count t = List.length t.s_running
let has_capacity t = running_count t < t.s_pool
let running_ids t = List.rev_map (fun r -> r.r_id) t.s_running

let start t ~now ~id ~deadline spec =
  if not (has_capacity t) then failwith "Supervisor.start: pool is full";
  (* The admission deadline caps the worker's wall clock: Isolate
     SIGKILLs [grace] past it. The job's own budget (from the spec) is
     built inside the worker by [Job.execute]. *)
  let timeout = Option.map (fun d -> Float.max 0.0 (d -. now)) deadline in
  let retry = t.s_retry in
  let jitter_seed = Journal_codec.crc32 id in
  let worker =
    Isolate.spawn ~budget:Budget.unlimited ?timeout ~grace:t.s_grace (fun () ->
        Job.execute ?retry ~jitter_seed spec)
  in
  t.s_running <-
    { r_id = id; r_class = Job.job_class spec; r_started_at = now;
      r_worker = worker }
    :: t.s_running

let flatten = function
  | Ok (Ok _ as ok) -> ok
  | Ok (Error _ as err) -> err
  | Error _ as err -> err

type finished = {
  f_id : string;
  f_class : string;
  f_duration : float;
  f_outcome : outcome;
}

let poll t ~now =
  (* Reap the whole sweep even when one worker blows up mid-scan. An
     exception from [Isolate.poll] (whose abandon path has already
     killed and reaped that worker) used to abort the partition,
     leaving every other worker that died in the same select wake-up
     unreaped and its slot occupied — under a burst of simultaneous
     deaths the pool could wedge below capacity. Converting the
     exception into a finished record keeps the accounting exact: all
     slots freed by the burst are reclaimed in this single call,
     before the caller dispatches anything new. *)
  let finished, still =
    List.partition_map
      (fun r ->
        match Isolate.poll r.r_worker with
        | Some res -> Either.Left (r, res)
        | None -> Either.Right r
        | exception e ->
            Either.Left
              ( r,
                Error
                  (Guard.Solver_error
                     (Printf.sprintf "supervisor: reap failed: %s"
                        (Printexc.to_string e))) ))
      t.s_running
  in
  t.s_running <- still;
  List.rev_map
    (fun (r, res) ->
      {
        f_id = r.r_id;
        f_class = r.r_class;
        f_duration = Float.max 0.0 (now -. r.r_started_at);
        f_outcome = flatten res;
      })
    finished

let fds t =
  List.filter_map (fun r -> Isolate.poll_fd r.r_worker) t.s_running

let next_kill_deadline t =
  List.fold_left
    (fun acc r ->
      match Isolate.kill_deadline r.r_worker, acc with
      | None, acc -> acc
      | Some d, None -> Some d
      | Some d, Some a -> Some (Float.min d a))
    None t.s_running

let drain_await t ~now =
  let finished =
    List.rev_map
      (fun r ->
        {
          f_id = r.r_id;
          f_class = r.r_class;
          f_duration = Float.max 0.0 (now -. r.r_started_at);
          f_outcome = flatten (Isolate.await r.r_worker);
        })
      t.s_running
  in
  t.s_running <- [];
  finished

let abort_all t =
  List.iter
    (fun r ->
      Isolate.force_kill r.r_worker;
      ignore (Isolate.await r.r_worker))
    t.s_running;
  t.s_running <- []
