(** The job service: WAL-journaled admission, a supervised {!Isolate}
    worker pool, per-class circuit breakers, deadline-aware load
    shedding, and crash-only recovery.

    Durability contract: {!submit} journals and fsyncs the admission
    before returning the job id, and every completion is journaled
    before it is observable through {!status} — so across any crash
    (SIGKILL included) {!start} recovers a state where no acknowledged
    job is lost, no completed result is re-run or changed, and every
    admitted-but-incomplete job runs again (at-least-once execution,
    exactly-once completion recording).

    Single-threaded by design, like the rest of the runtime: the
    daemon's select loop calls {!step}/{!submit}; nothing here is
    thread-safe. *)

(** A job's lifecycle state. [Shed] carries the structured reject code
    ({!Jobq.reject_code}) or ["deadline"] for dispatch-time
    expiration. *)
type state =
  | Queued
  | Running
  | Done of string  (** the worker's one-line summary *)
  | Failed of string  (** rendered {!Guard.failure} *)
  | Shed of string

val state_to_string : state -> string

type config = {
  wal_path : string;
  pool_size : int;  (** concurrent workers *)
  queue_capacity : int;  (** bounded admission queue *)
  default_timeout : float option;
      (** applied to specs that carry no timeout *)
  breaker_threshold : int;  (** consecutive failures to trip *)
  breaker_cooldown : float;  (** seconds before a half-open probe *)
  retries : int;  (** extra in-worker attempts per job *)
  retry_backoff : float;  (** base backoff seconds (exponential) *)
  grace : float;  (** seconds past deadline before SIGKILL *)
}

val default_config : wal_path:string -> config

(** What {!start} reconstructed from the log. *)
type recovery = {
  replayed_events : int;
  recovered_completed : int;  (** terminal results preserved *)
  requeued : int;  (** incomplete jobs re-admitted *)
  shed_on_recovery : int;  (** requeue candidates past their deadline *)
  dropped_bytes : int;  (** torn/undecodable tail truncated away *)
}

type t

val start : config -> t
(** Open (or create) the WAL, replay it, repair any torn tail, and
    rebuild the service state — first boot and post-crash boot are the
    same code path.
    @raise Invalid_argument on nonsensical config values.
    @raise Unix.Unix_error when the WAL cannot be opened. *)

val recovery : t -> recovery
val config : t -> config

val submit : t -> ?deadline:float -> Job.spec -> (string, Jobq.reject) result
(** Admit a job. [deadline] is absolute {!Budget.Clock} time. On [Ok
    id] the admission is already durable. Rejections — invalid spec,
    draining, open breaker, full queue, unmeetable deadline — are
    synchronous, structured, and never journaled.
    @raise Unix.Unix_error when the WAL write fails (the job is not
    admitted). *)

val step : t -> float option
(** One event-loop turn: reap finished workers (journaling their
    outcomes, feeding the breakers), shed queued jobs whose deadline
    passed, dispatch while the pool has capacity. Returns the earliest
    absolute time at which a running worker becomes killable — combine
    with {!wait_fds} to size a [select] timeout. *)

val wait_fds : t -> Unix.file_descr list
(** The running workers' result pipes; readability means {!step} has
    work to do. *)

val idle : t -> bool
(** No queued and no running jobs. *)

val drain : t -> unit
(** Stop admitting ({!submit} returns [Error Draining]); already
    admitted jobs still run — drain means "finish the promised work,
    take nothing new". *)

val drain_finish : t -> unit
(** {!drain}, then block until every admitted job reaches a terminal
    state — the SIGTERM path. *)

val close : t -> unit
(** SIGKILL and reap any still-running workers (their jobs stay
    incomplete in the journal, so a later {!start} re-runs them) and
    close the WAL. *)

val status : t -> string -> state option
val job_ids : t -> string list
(** All known ids in submission order. *)

type stats = {
  queued : int;
  running : int;
  done_ : int;
  failed : int;
  shed : int;
  draining : bool;
}

val stats : t -> stats
