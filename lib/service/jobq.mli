(** Bounded FIFO admission queue with deadline-aware load shedding,
    and the service's structured reject taxonomy.

    (Named [Jobq] rather than the issue's [Queue]: every library here
    is unwrapped, and a toplevel [Queue] unit would collide with the
    stdlib's at link time.)

    Overload is shed at admission — synchronously, with a reason — and
    lateness is shed at dispatch: {!pop_ready} refuses to hand out an
    entry whose deadline already passed while it queued. *)

(** Why a submission was refused. Stable wire codes via
    {!reject_code}: [busy], [deadline], [breaker], [overload],
    [draining], [invalid]. *)
type reject =
  | Queue_full of int  (** the bounded queue is at capacity *)
  | Deadline_unmeetable of { wait : float; slack : float }
      (** projected queue wait already exceeds the job's slack *)
  | Breaker_open of { job_class : string; retry_after : float }
      (** the per-class circuit breaker is open *)
  | Overloaded of { retry_after : float }
      (** the serving tier's eval admission rate is exhausted *)
  | Draining  (** the service is draining (SIGTERM) *)
  | Invalid of string  (** the job spec failed validation *)

val reject_code : reject -> string
val reject_to_string : reject -> string

type 'a entry = {
  e_id : string;
  e_deadline : float option;  (** absolute {!Budget.Clock} time *)
  e_enqueued_at : float;
  e_payload : 'a;
}

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val length : 'a t -> int
val capacity : 'a t -> int
val is_empty : 'a t -> bool

val admit :
  'a t -> now:float -> projected_wait:float -> id:string ->
  deadline:float option -> 'a -> (unit, reject) result
(** Admission-check and enqueue: rejects a full queue and a deadline
    closer than [projected_wait]. Breaker and draining rejections are
    the caller's ({!Service.submit}'s) to make — they need state this
    queue does not hold. *)

val enqueue :
  'a t -> id:string -> deadline:float option -> now:float -> 'a -> unit
(** Unchecked enqueue, for recovery: a job journaled as admitted before
    a crash is re-queued even past capacity — the bound applies to new
    work, not to the backlog already promised. *)

type 'a popped =
  | Empty
  | Expired of 'a entry
      (** deadline passed while queued; shed it, do not run it *)
  | Ready of 'a entry

val pop_ready : 'a t -> now:float -> 'a popped
