(* Bounded verdict cache for the serving tier.

   Entries are keyed by canonical entity-neighborhood strings (see
   [Neighborhood]) and tagged with the model version they were
   computed under: [set_version] on a publish or rollback clears the
   table wholesale, so a stale verdict can never outlive its model.
   Eviction is FIFO — verdicts are cheap to recompute and uniform in
   size, so recency tracking buys little here.

   Every live cache is reachable from one registered [Runtime_state]
   entry: [reset_caches] in a forked worker empties the tables (a
   pure cache, dropping entries only costs recomputation), and the
   registry validator checks the capacity bound. *)

type t = {
  capacity : int;
  tbl : (string, Labeling.label) Hashtbl.t;
  order : string Queue.t;
  mutable version : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable flips : int;
}

let live : t list ref = ref []

let clear t =
  Hashtbl.reset t.tbl;
  Queue.clear t.order

let () =
  Runtime_state.register ~name:"service.eval_cache"
    ~validate:(fun () ->
      List.for_all (fun t -> Hashtbl.length t.tbl <= t.capacity) !live)
    (fun () -> List.iter clear !live)

let create ~capacity =
  if capacity < 1 then invalid_arg "Eval_cache.create: capacity < 1";
  let t =
    {
      capacity;
      tbl = Hashtbl.create 64;
      order = Queue.create ();
      version = -1;
      hits = 0;
      misses = 0;
      evictions = 0;
      flips = 0;
    }
  in
  live := t :: !live;
  t

let set_version t v =
  if v <> t.version then begin
    clear t;
    t.version <- v;
    t.flips <- t.flips + 1
  end

let find t ~version key =
  if version <> t.version then begin
    t.misses <- t.misses + 1;
    None
  end
  else
    match Hashtbl.find_opt t.tbl key with
    | Some _ as r ->
        t.hits <- t.hits + 1;
        r
    | None ->
        t.misses <- t.misses + 1;
        None

let add t ~version key label =
  set_version t version;
  if not (Hashtbl.mem t.tbl key) then begin
    if Hashtbl.length t.tbl >= t.capacity then begin
      (match Queue.take_opt t.order with
      | Some oldest ->
          Hashtbl.remove t.tbl oldest;
          t.evictions <- t.evictions + 1
      | None -> ());
      ()
    end;
    Hashtbl.add t.tbl key label;
    Queue.add key t.order
  end

type stats = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
  flips : int;
}

let stats t =
  {
    entries = Hashtbl.length t.tbl;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    flips = t.flips;
  }
