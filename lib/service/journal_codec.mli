(** Checksummed framing for the {!Wal} write-ahead log.

    A frame is [magic "CQW1" | length (u32 BE) | crc32 (u32 BE) |
    payload]. The magic and declared length make a torn tail write
    decode as {!Truncated}; the CRC-32 catches payload corruption the
    length cannot. Frames are self-delimiting, so a log is replayed by
    decoding frames back to back until the bytes run out. *)

val crc32 : string -> int
(** CRC-32 (IEEE 802.3, reflected): [crc32 "123456789"] is
    [0xCBF43926]. Also used to derive deterministic per-job jitter
    seeds from job ids. *)

val header_len : int
(** Bytes of framing overhead per record. *)

val max_payload : int
(** Largest accepted payload (16 MiB); a declared length above it is
    treated as corruption rather than allocated. *)

val encode : string -> string
(** [encode payload] is the framed record.
    @raise Invalid_argument when the payload exceeds {!max_payload}. *)

(** Why a frame failed to decode. [Truncated] — the bytes end mid-frame
    (the torn-tail signature of a crash during {!Wal.append}); [Corrupt]
    — the bytes are present but wrong (bad magic, implausible length,
    checksum mismatch). *)
type error =
  | Truncated
  | Corrupt of string

val error_to_string : error -> string

val decode : string -> pos:int -> (string * int, error) result
(** [decode s ~pos] decodes the frame starting at [pos], returning the
    payload and the offset just past the frame.
    @raise Invalid_argument when [pos] is outside [s]. *)
