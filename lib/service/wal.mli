(** Append-only write-ahead log with checksummed records
    ({!Journal_codec} frames) and crash-only recovery.

    Contract: when {!append} returns, the record is on disk and fsynced
    — it survives any later crash, SIGKILL included. A crash *during*
    an append leaves at most one torn frame at the tail; {!replay}
    recovers the longest valid prefix and reports the damage, {!repair}
    truncates the torn tail so appending can resume on clean framing.
    One writer at a time; replay may run on a log nobody has open. *)

type t
(** An open log, positioned for appending. *)

val open_append : string -> t
(** Open (creating if absent) the log at a path for appending.
    @raise Unix.Unix_error when the file cannot be opened. *)

val path : t -> string

val append : t -> string -> unit
(** [append t payload] frames, writes and fsyncs one record; on return
    the record is durable.
    @raise Invalid_argument on a closed log or an oversized payload.
    @raise Unix.Unix_error when the write or fsync fails. *)

val close : t -> unit
(** Fsync and close. Idempotent; errors during close are swallowed. *)

(** {2 Replay} *)

type replay = {
  records : (string * int) list;
      (** each durable payload with the byte offset just past its
          frame, in append order *)
  valid_bytes : int;
      (** length of the longest valid prefix — the offset at which
          decoding stopped *)
  total_bytes : int;  (** file size as read *)
  damage : Journal_codec.error option;
      (** [None] when the whole file decoded; [Some Truncated] for the
          torn-tail signature of a mid-append crash; [Some (Corrupt _)]
          for bytes that are present but wrong *)
}

val replay : string -> replay
(** [replay path] decodes the log front to back. A missing file is an
    empty, undamaged log (the crash-only idiom: first boot and
    post-crash boot share one code path). *)

val repair : string -> replay -> bool
(** [repair path rep] truncates the file to [rep.valid_bytes] when
    [rep] reports damage, discarding the torn tail; returns whether it
    truncated. Run it before {!open_append} after a crash. *)

(** {2 Crash-injection seam (tests only)} *)

(** Durability checkpoints inside {!append}: [Frame_start] — nothing of
    the frame written; [Frame_torn] — the frame half-written (a crash
    here is the torn tail {!replay} must detect); [Frame_synced] — the
    frame durable. *)
type stage =
  | Frame_start
  | Frame_torn
  | Frame_synced

val set_crash_hook : (stage -> unit) option -> unit
(** Install a hook called at each stage crossing of every {!append} —
    the chaos suite's seam for SIGKILLing itself at seeded awkward
    moments. Registered with {!Runtime_state} (reset uninstalls).
    Production code never installs one. *)
