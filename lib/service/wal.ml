(* Append-only write-ahead log with checksummed records and crash-only
   recovery.

   Durability contract: [append] returns only after the framed record
   has been written *and* fsynced, so a record the caller has seen
   acknowledged survives any subsequent crash, SIGKILL included. A
   crash mid-append leaves at most one torn frame at the tail; [replay]
   decodes the longest valid prefix and reports the damage, [repair]
   truncates it away so the next writer appends onto clean framing.

   Crash hooks: the chaos tests need to die at precisely the awkward
   moments — after a frame has started hitting the disk, after a torn
   half-write, after the fsync. [append] announces those three stages
   through a registered hook; a test installs one that SIGKILLs its own
   process at the nth crossing. Production never installs a hook, and
   the stage calls cost one ref read each. *)

(* Where [append] is, durability-wise, when a crash hook fires:
   [Frame_start] — nothing of the frame written yet; [Frame_torn] —
   roughly half the frame written (a crash here is the torn-tail case
   replay must detect); [Frame_synced] — the frame written and fsynced
   (a crash here must lose nothing). *)
type stage =
  | Frame_start
  | Frame_torn
  | Frame_synced

let crash_hook : (stage -> unit) option ref = ref None
let set_crash_hook h = crash_hook := h
let fire stage = match !crash_hook with None -> () | Some f -> f stage

let () =
  Runtime_state.register ~name:"service.wal.crash_hook" ~kind:`Config
    (fun () -> crash_hook := None)

type t = {
  w_path : string;
  w_fd : Unix.file_descr;
  mutable w_closed : bool;
}

let path t = t.w_path

let open_append path =
  let fd =
    Unix.openfile path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND; Unix.O_CLOEXEC ]
      0o644
  in
  { w_path = path; w_fd = fd; w_closed = false }

let write_all fd s off len =
  let bytes = Bytes.unsafe_of_string s in
  let rec go off len =
    if len > 0 then begin
      let n =
        try Unix.write fd bytes off len
        with Unix.Unix_error (Unix.EINTR, _, _) -> 0
      in
      go (off + n) (len - n)
    end
  in
  go off len

let append t payload =
  if t.w_closed then invalid_arg "Wal.append: log is closed";
  let frame = Journal_codec.encode payload in
  let n = String.length frame in
  fire Frame_start;
  (* Two writes on purpose: the seam between them is exactly where a
     torn tail can appear, and the [Frame_torn] hook lets the chaos
     suite park a SIGKILL on it. A single write would only move the
     tear into the kernel's hands, not eliminate it. *)
  let cut = n / 2 in
  write_all t.w_fd frame 0 cut;
  fire Frame_torn;
  write_all t.w_fd frame cut (n - cut);
  Unix.fsync t.w_fd;
  fire Frame_synced

let close t =
  if not t.w_closed then begin
    t.w_closed <- true;
    (try Unix.fsync t.w_fd with Unix.Unix_error _ -> ());
    try Unix.close t.w_fd with Unix.Unix_error _ -> ()
  end

type replay = {
  records : (string * int) list;
  valid_bytes : int;
  total_bytes : int;
  damage : Journal_codec.error option;
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let replay path =
  if not (Sys.file_exists path) then
    { records = []; valid_bytes = 0; total_bytes = 0; damage = None }
  else begin
    let contents = read_file path in
    let total = String.length contents in
    let rec go acc pos =
      if pos = total then
        { records = List.rev acc; valid_bytes = pos; total_bytes = total;
          damage = None }
      else
        match Journal_codec.decode contents ~pos with
        | Ok (payload, next) -> go ((payload, next) :: acc) next
        | Error e ->
            (* Longest valid prefix: everything before [pos] checksummed
               clean; the tail from [pos] on is lost to the crash. *)
            { records = List.rev acc; valid_bytes = pos; total_bytes = total;
              damage = Some e }
    in
    go [] 0
  end

let repair path rep =
  if rep.damage <> None && rep.valid_bytes < rep.total_bytes then begin
    Unix.truncate path rep.valid_bytes;
    true
  end
  else false
