(** Job specifications: the service's unit of work.

    A spec is plain data — strings, ints, options — so it journals
    (Marshal inside {!Service} events), crosses the daemon's wire
    protocol (the [key=value] line codec here), and returns from forked
    workers without marshal hazards. Languages travel as their CLI
    strings ({!Language.of_string} syntax) and are parsed in the
    worker. *)

type kind =
  | Sep of { lang : string; dim : int option }
      (** [L]-Sep / [L]-Sep[ℓ] via {!Cqfeat.separable} *)
  | Ladder
      (** the CQ-Sep graceful-degradation ladder,
          {!Cq_sep.decide_with_fallback} *)
  | Generate of { lang : string; ghw_depth : int; dim : int option }
      (** feature generation via {!Cqfeat.generate} *)
  | Selftest of { spin : int }
      (** deterministic budget-ticking busy work; needs no input
          database (the chaos suites' workhorse) *)

type spec = {
  kind : kind;
  db_path : string;  (** textfmt training database; unused by selftest *)
  timeout : float option;  (** per-job budget seconds *)
  fuel : int option;  (** per-job budget ticks *)
}

val job_class : spec -> string
(** The circuit-breaker class: ["sep"], ["ladder"], ["generate"] or
    ["selftest"]. *)

val describe : spec -> string

val validate : spec -> (unit, string) result
(** Structural validation (parsable language, positive parameters,
    database path present where required) — performed at admission so
    invalid jobs are rejected synchronously, never queued. *)

val spec_to_wire : spec -> string
(** One-line [key=value] encoding (values percent-escaped); inverse of
    {!spec_of_wire}. *)

val spec_of_wire : string -> (spec, string) result
(** Parse and {!validate} a wire line. *)

val enc_value : string -> string
(** Percent-escape a field value for the one-line wire format
    (escapes ['%'], space and control bytes). Shared by the other
    protocol verbs (CLASSIFY/PUBLISH) so every value on the wire
    round-trips the same way. *)

val dec_value : string -> string
(** Inverse of {!enc_value}.
    @raise Failure on a malformed percent escape. *)

val execute :
  ?retry:int * float -> ?jitter_seed:int -> spec ->
  (string, Guard.failure) result
(** [execute ?retry ?jitter_seed spec] runs the job under its own
    budget (from [spec.timeout]/[spec.fuel]) and returns a one-line
    summary or a structured failure. [retry = (extra, backoff)] wraps
    execution in {!Guard.retrying} with [extra] additional attempts,
    deadline extension, and exponential [backoff] jittered by
    [jitter_seed] (derive it from the job id so concurrent workers
    de-correlate deterministically). Runs inside an {!Isolate} worker
    in production, but is safe to call in-process (tests do). *)
