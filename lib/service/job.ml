(* Job specifications: what the service runs, how it travels on the
   wire and in the journal, and how a worker executes it.

   A spec is plain data (strings, ints, options only), so it is safe to
   Marshal into journal events and into the forked worker's result
   protocol, and safe for cqlint's R7 to see at an [Isolate.spawn]
   site. The language is carried as its CLI string and parsed in the
   worker — parsing is cheap, and keeping [Language.t] out of the spec
   keeps the wire format independent of solver internals.

   [execute] runs *inside* an [Isolate] worker: it builds the job's own
   budget from the spec, wraps the chosen retry policy (exponential
   backoff with a jitter stream seeded from the job id, so a herd of
   retrying workers de-correlates deterministically), and reduces every
   outcome to [(string, Guard.failure) result] — a one-line summary or
   a structured failure, both marshalable. *)

type kind =
  | Sep of { lang : string; dim : int option }
  | Ladder
  | Generate of { lang : string; ghw_depth : int; dim : int option }
  | Selftest of { spin : int }

type spec = {
  kind : kind;
  db_path : string;
  timeout : float option;
  fuel : int option;
}

let job_class spec =
  match spec.kind with
  | Sep _ -> "sep"
  | Ladder -> "ladder"
  | Generate _ -> "generate"
  | Selftest _ -> "selftest"

let describe spec =
  match spec.kind with
  | Sep { lang; dim } ->
      Printf.sprintf "sep lang=%s%s db=%s" lang
        (match dim with None -> "" | Some d -> Printf.sprintf " dim=%d" d)
        spec.db_path
  | Ladder -> Printf.sprintf "ladder db=%s" spec.db_path
  | Generate { lang; ghw_depth; dim } ->
      Printf.sprintf "generate lang=%s ghw_depth=%d%s db=%s" lang ghw_depth
        (match dim with None -> "" | Some d -> Printf.sprintf " dim=%d" d)
        spec.db_path
  | Selftest { spin } -> Printf.sprintf "selftest spin=%d" spin

let validate spec =
  let check_lang lang =
    match Language.of_string lang with
    | Ok _ -> Ok ()
    | Error msg -> Error msg
  in
  let check_db k =
    if spec.db_path = "" then Error "missing database path" else k ()
  in
  let check_bounds k =
    match spec.timeout, spec.fuel with
    | Some s, _ when s <= 0.0 -> Error "timeout must be > 0"
    | _, Some f when f < 1 -> Error "fuel must be >= 1"
    | _ -> k ()
  in
  check_bounds (fun () ->
      match spec.kind with
      | Selftest { spin } ->
          if spin < 0 then Error "selftest spin must be >= 0" else Ok ()
      | Sep { lang; dim } ->
          check_db (fun () ->
              match dim with
              | Some d when d < 1 -> Error "dim must be >= 1"
              | _ -> check_lang lang)
      | Ladder -> check_db (fun () -> Ok ())
      | Generate { lang; ghw_depth; dim } ->
          check_db (fun () ->
              if ghw_depth < 1 then Error "ghw_depth must be >= 1"
              else
                match dim with
                | Some d when d < 1 -> Error "dim must be >= 1"
                | _ -> check_lang lang))

(* {2 Wire codec}

   One spec per line: space-separated [key=value] fields with values
   percent-encoded (%, space, and control bytes), shared by the daemon
   protocol, the [cqq] client, and the tests. Field order on encode is
   fixed; decode accepts any order and rejects unknown keys. *)

let enc_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '%' || c = ' ' || Char.code c < 0x21 then
        Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let dec_value s =
  let n = String.length s in
  let buf = Buffer.create n in
  let hex c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | _ -> failwith "bad percent escape"
  in
  let rec go i =
    if i < n then
      if s.[i] = '%' then
        if i + 2 < n then begin
          Buffer.add_char buf (Char.chr ((hex s.[i + 1] * 16) + hex s.[i + 2]));
          go (i + 3)
        end
        else failwith "bad percent escape"
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let spec_to_wire spec =
  let fields = ref [] in
  let add k v = fields := (k, v) :: !fields in
  (match spec.kind with
  | Sep { lang; dim } ->
      add "kind" "sep";
      add "lang" lang;
      Option.iter (fun d -> add "dim" (string_of_int d)) dim
  | Ladder -> add "kind" "ladder"
  | Generate { lang; ghw_depth; dim } ->
      add "kind" "generate";
      add "lang" lang;
      add "ghw_depth" (string_of_int ghw_depth);
      Option.iter (fun d -> add "dim" (string_of_int d)) dim
  | Selftest { spin } ->
      add "kind" "selftest";
      add "spin" (string_of_int spin));
  if spec.db_path <> "" then add "db" spec.db_path;
  Option.iter (fun s -> add "timeout" (Printf.sprintf "%g" s)) spec.timeout;
  Option.iter (fun f -> add "fuel" (string_of_int f)) spec.fuel;
  String.concat " "
    (List.rev_map (fun (k, v) -> k ^ "=" ^ enc_value v) !fields)

let spec_of_wire line =
  let parse () =
    let fields =
      List.filter_map
        (fun tok ->
          if tok = "" then None
          else
            match String.index_opt tok '=' with
            | None -> failwith ("field without '=': " ^ tok)
            | Some i ->
                Some
                  ( String.sub tok 0 i,
                    dec_value (String.sub tok (i + 1) (String.length tok - i - 1))
                  ))
        (String.split_on_char ' ' line)
    in
    let known =
      [ "kind"; "lang"; "dim"; "ghw_depth"; "spin"; "db"; "timeout"; "fuel" ]
    in
    List.iter
      (fun (k, _) ->
        if not (List.mem k known) then failwith ("unknown field: " ^ k))
      fields;
    let get k = List.assoc_opt k fields in
    let int_of k v =
      match int_of_string_opt v with
      | Some i -> i
      | None -> failwith (k ^ " must be an integer")
    in
    let float_of k v =
      match float_of_string_opt v with
      | Some f -> f
      | None -> failwith (k ^ " must be a number")
    in
    let lang () =
      match get "lang" with
      | Some l -> l
      | None -> failwith "missing field: lang"
    in
    let dim () = Option.map (int_of "dim") (get "dim") in
    let kind =
      match get "kind" with
      | Some "sep" -> Sep { lang = lang (); dim = dim () }
      | Some "ladder" -> Ladder
      | Some "generate" ->
          Generate
            {
              lang = lang ();
              ghw_depth =
                (match get "ghw_depth" with
                | Some v -> int_of "ghw_depth" v
                | None -> 2);
              dim = dim ();
            }
      | Some "selftest" ->
          Selftest
            {
              spin =
                (match get "spin" with
                | Some v -> int_of "spin" v
                | None -> 1000);
            }
      | Some other -> failwith ("unknown kind: " ^ other)
      | None -> failwith "missing field: kind"
    in
    {
      kind;
      db_path = (match get "db" with Some p -> p | None -> "");
      timeout = Option.map (float_of "timeout") (get "timeout");
      fuel = Option.map (int_of "fuel") (get "fuel");
    }
  in
  match parse () with
  | spec -> begin
      match validate spec with Ok () -> Ok spec | Error msg -> Error msg
    end
  | exception Failure msg -> Error msg

(* {2 Execution (worker side)} *)

let budget_of spec =
  match spec.timeout, spec.fuel with
  | None, None -> Budget.unlimited
  | timeout, fuel -> Budget.make ?timeout ?fuel ()

let runner_of ~retry ~jitter_seed =
  match retry with
  | Some (extra, backoff) when extra > 0 ->
      Guard.retrying ~attempts:(extra + 1) ~backoff ~jitter_seed
        ~extend_deadline:true Guard.runner
  | Some _ | None -> Guard.runner

(* Deterministic busy-work that ticks the ambient budget — the job kind
   the chaos and integration suites lean on, because it needs no input
   database and its cost is an explicit parameter. *)
let selftest ~spin =
  let acc = ref 0 in
  for i = 1 to spin do
    Budget.tick ~what:"service selftest" ();
    acc := ((!acc * 31) + i) land 0xFFFFFF
  done;
  Printf.sprintf "selftest ok (%06x)" !acc

let lang_of lang =
  match Language.of_string lang with
  | Ok l -> l
  | Error msg -> Guard.solver_error "job language: %s" msg

let read_training path =
  match Textfmt.training_of_document (Textfmt.parse_file path) with
  | t -> t
  | exception Textfmt.Parse_error msg -> Guard.solver_error "job input: %s" msg
  | exception Sys_error msg -> Guard.solver_error "job input: %s" msg
  | exception Invalid_argument msg -> Guard.solver_error "job input: %s" msg

let execute ?retry ?(jitter_seed = 0) spec =
  let budget = budget_of spec in
  let runner = runner_of ~retry ~jitter_seed in
  match spec.kind with
  | Selftest { spin } -> runner.Guard.run budget (fun () -> selftest ~spin)
  | Sep { lang; dim } ->
      runner.Guard.run budget (fun () ->
          let l = lang_of lang in
          let t = read_training spec.db_path in
          Printf.sprintf "%s-separable: %b" (Language.to_string l)
            (Cqfeat.separable ?dim l t))
  | Generate { lang; ghw_depth; dim } ->
      runner.Guard.run budget (fun () ->
          let l = lang_of lang in
          let t = read_training spec.db_path in
          match Cqfeat.generate ~ghw_depth ?dim l t with
          | Some (stat, cls) ->
              Printf.sprintf "generated %d features; training errors: %d"
                (Statistic.dimension stat)
                (Statistic.errors stat cls t)
          | None -> "not separable: no statistic generated")
  | Ladder -> begin
      (* The ladder takes the runner itself (retries apply per rung)
         and its own budget; only the input read is guarded here. *)
      match Guard.run budget (fun () -> read_training spec.db_path) with
      | Error _ as e -> e
      | Ok t ->
          let r = Cq_sep.decide_with_fallback ~budget ~runner t in
          (match r.Cq_sep.answer with
          | Some answer ->
              Ok
                (Format.asprintf "cq-separable: %b (%a)" answer
                   Cq_sep.pp_provenance r.Cq_sep.provenance)
          | None -> begin
              match r.Cq_sep.provenance with
              | Cq_sep.Gave_up failure -> Error failure
              | _ -> Error (Guard.Solver_error "ladder returned no answer")
            end)
    end
