(* Versioned on-disk model store with crash-only recovery.

   Layout: one [v%06d.model] file per published version (written by
   [Model_io.save]: temp + fsync + rename + directory fsync, with an
   integrity header) and a [CURRENT] pointer file naming the serving
   version, rewritten with the same atomic primitive. A publish
   orders the two writes model-file-first, so every state a crash can
   expose is well-formed:

   - crash before the model rename: only a temp file exists; [open_]
     removes it and serves the previous CURRENT;
   - crash between model rename and CURRENT rename: the new version
     file is complete but unreferenced; CURRENT still names the old
     version, which is exactly "publish not acked, old model served";
   - crash after CURRENT rename: the publish is durable.

   Version numbers are monotone over the store's whole history — the
   counter resumes past every version ever seen on disk (valid or
   corrupt, referenced or not), so a rollback never reuses a number
   and observers can order publishes by version alone. *)

type t = {
  dir : string;
  mutable versions : int list;  (* valid, ascending *)
  mutable current : int option;
  mutable next : int;
}

let model_file dir v = Filename.concat dir (Printf.sprintf "v%06d.model" v)
let current_file dir = Filename.concat dir "CURRENT"

let parse_version name =
  if
    String.length name = 13
    && String.sub name 0 1 = "v"
    && String.sub name 7 6 = ".model"
  then int_of_string_opt (String.sub name 1 6)
  else None

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n > 0 && at 0

let valid_model dir v =
  match Model_io.load (model_file dir v) with
  | (_ : Model_io.model) -> true
  | exception Model_io.Parse_error _ -> false
  | exception Sys_error _ -> false

let read_current dir =
  match open_in_bin (current_file dir) with
  | exception Sys_error _ -> None
  | ic ->
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let s = String.trim s in
      if String.length s > 1 && s.[0] = 'v' then
        int_of_string_opt (String.sub s 1 (String.length s - 1))
      else None

let open_ ~dir =
  (match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  let versions = ref [] and max_seen = ref 0 in
  Array.iter
    (fun name ->
      (* Crash-only cleanup: a temp file is by definition an
         unfinished write from a dead process. *)
      if contains_sub ~sub:".tmp." name then
        (try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
      else
        match parse_version name with
        | None -> ()
        | Some v ->
            max_seen := max !max_seen v;
            if valid_model dir v then versions := v :: !versions)
    entries;
  let versions = List.sort compare !versions in
  let current =
    match read_current dir with
    | Some v when List.mem v versions -> Some v
    | Some _ | None -> (
        (* Missing or dangling CURRENT: fall back to the newest valid
           version (a publish whose CURRENT flip did not survive). *)
        match List.rev versions with [] -> None | v :: _ -> Some v)
  in
  { dir; versions; current; next = !max_seen + 1 }

let dir t = t.dir
let list t = t.versions
let current_version t = t.current

let load t v =
  if not (List.mem v t.versions) then
    invalid_arg (Printf.sprintf "Model_store.load: no version %d" v);
  Model_io.load (model_file t.dir v)

let set_current t v =
  Model_io.atomic_write (current_file t.dir) (Printf.sprintf "v%06d\n" v);
  t.current <- Some v

let publish t m =
  let v = t.next in
  Model_io.save (model_file t.dir v) m;
  t.next <- v + 1;
  t.versions <- t.versions @ [ v ];
  set_current t v;
  v

let rollback t =
  match t.current with
  | None -> Error "no model published"
  | Some c -> (
      match List.rev (List.filter (fun v -> v < c) t.versions) with
      | [] -> Error "no earlier version to roll back to"
      | v :: _ ->
          set_current t v;
          Ok v)
