(** Per-job-class circuit breaker over the {!Budget.Clock}.

    Closed → (threshold consecutive resource failures) → Open →
    (cool-down elapses) → Half-open, where exactly one probe runs and
    its outcome closes or re-opens the breaker. Callers count only
    resource failures ({!Guard.is_resource_failure}) against it — a
    [Solver_error] is the job's fault, not the pool's, and counts as a
    success for breaker purposes. *)

type t

type state =
  | Closed
  | Open
  | Half_open

val state_to_string : state -> string

val create : ?threshold:int -> ?cooldown:float -> unit -> t
(** [threshold] consecutive failures trip the breaker (default 5);
    [cooldown] seconds must pass before a probe (default 30).
    @raise Invalid_argument when [threshold < 1] or [cooldown <= 0]. *)

val state : t -> now:float -> state

val allow : t -> now:float -> bool
(** May a job of this class be admitted now? Closed: yes. Open: no,
    until the cool-down elapses — then the first [allow] claims the
    single half-open probe slot (and subsequent calls say no until the
    probe's outcome is reported). *)

val retry_after : t -> now:float -> float
(** Seconds until the cool-down elapses (0 unless open) — surfaced in
    the [Breaker_open] rejection so clients can back off smartly. *)

val success : t -> unit
(** Report a completed job (or a deterministic solver error): resets
    the failure count and closes the breaker. *)

val failure : t -> now:float -> unit
(** Report a resource failure: increments toward the threshold when
    closed, re-opens immediately when it was the half-open probe. *)
