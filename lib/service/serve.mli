(** The serving tier: versioned models, cached verdicts, admission.

    A [Serve.t] pairs a {!Model_store} with an in-memory snapshot of
    the current model, an {!Eval_cache} of verdicts, and an
    admission/degradation ladder. Each batch is classified against
    exactly one snapshot (the snapshot swaps only after a publish has
    committed to disk — a batch racing a publish sees the previous
    version, never a mix). Under overload, cold evaluation sheds with
    structured {!Jobq.reject}s while cache-hit traffic keeps being
    served; repeated budget exhaustion opens a breaker that keeps
    failing cold evals off the pool. *)

type config = {
  cache_capacity : int;
  eval_rate : float;  (** cold-entity evaluations admitted per second *)
  eval_burst : float;  (** token-bucket depth, in cold evaluations *)
  eval_timeout : float option;  (** budget per classify batch *)
  eval_fuel : int option;
  key_fuel : int;  (** fuel for neighborhood-key construction *)
  breaker_threshold : int;
  breaker_cooldown : float;
  db_cache_slots : int;
}

val default_config : config

type t

(** [create ?config store] loads the store's current version (if any)
    as the serving snapshot. *)
val create : ?config:config -> Model_store.t -> t

val store : t -> Model_store.t
val current_version : t -> int option

(** [publish t m] writes a new version durably and swaps the serving
    snapshot to it (cache flips with the version).
    @raise Sys_error or [Unix.Unix_error] on I/O failure. *)
val publish : t -> Model_io.model -> int

val rollback : t -> (int, string) result

(** [models t] is [(current, all valid versions ascending)]. *)
val models : t -> int option * int list

type served = {
  sv_version : int;
  sv_results : (Elem.t * Labeling.label) list;  (** input order *)
  sv_hits : int;
  sv_cold : int;
}

type outcome =
  | Served of served
  | Shed of Jobq.reject  (** admission refused; nothing evaluated *)
  | Failed of Guard.failure  (** cold evaluation exceeded its budget *)

(** [classify t ~db_key ~db entities] — the ladder: no model →
    [Shed Invalid]; all hits → [Served] unconditionally; token bucket
    short → [Shed Overloaded]; breaker open → [Shed Breaker_open];
    else evaluate cold entities under the configured budget. [db_key]
    is an identity for [db] (e.g. a file fingerprint), used in cache
    keys when neighborhood keys are unavailable. *)
val classify :
  t -> db_key:string -> db:Db.t -> Elem.t list -> outcome

(** [load_db t path] parses a database file through the bounded
    per-instance cache (revalidated by stat identity). Returns the
    fingerprint (usable as [db_key]) and the database. *)
val load_db : t -> string -> (string * Db.t, string) result

type stats = {
  st_version : int option;
  st_served_batches : int;
  st_served_entities : int;
  st_cache : Eval_cache.stats;
  st_cold_evals : int;
  st_shed_overload : int;
  st_shed_breaker : int;
  st_eval_failures : int;
  st_publishes : int;
  st_rollbacks : int;
  st_tokens : float;
}

val stats : t -> stats
