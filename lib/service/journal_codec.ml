(* Checksummed framing for the write-ahead log.

   A frame is [magic "CQW1"][length u32be][crc32 u32be][payload]: the
   fixed header makes torn tails detectable (a partial header or a
   payload shorter than its declared length decodes as [Truncated]),
   and the CRC catches a torn payload whose length happens to fit.
   Big-endian fixed-width integers keep the on-disk format independent
   of the host, and [decode] never trusts [length] beyond the bytes
   actually present. *)

let magic = "CQW1"
let header_len = String.length magic + 4 + 4

(* Declared payload lengths above this are treated as corruption: no
   legitimate journal record is remotely close, and the cap stops a
   flipped length byte from turning one bad frame into a huge bogus
   allocation. *)
let max_payload = 16 * 1024 * 1024

(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the check
   value of "123456789" is 0xCBF43926, asserted by the test suite. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let () =
  Runtime_state.register ~name:"service.journal_codec.crc_table"
    ~validate:(fun () -> crc32 "123456789" = 0xCBF43926)
    (fun () -> ())

let put_u32be buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let get_u32be s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let encode payload =
  let n = String.length payload in
  if n > max_payload then
    invalid_arg "Journal_codec.encode: payload exceeds 16 MiB";
  let buf = Buffer.create (header_len + n) in
  Buffer.add_string buf magic;
  put_u32be buf n;
  put_u32be buf (crc32 payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

type error =
  | Truncated
  | Corrupt of string

let error_to_string = function
  | Truncated -> "truncated frame (torn tail write)"
  | Corrupt what -> "corrupt frame: " ^ what

let decode s ~pos =
  let len = String.length s in
  if pos < 0 || pos > len then invalid_arg "Journal_codec.decode: bad position";
  if len - pos < header_len then Error Truncated
  else if String.sub s pos (String.length magic) <> magic then
    Error (Corrupt "bad magic")
  else begin
    let plen = get_u32be s (pos + String.length magic) in
    let crc = get_u32be s (pos + String.length magic + 4) in
    if plen > max_payload then Error (Corrupt "implausible length")
    else if len - pos - header_len < plen then Error Truncated
    else
      let payload = String.sub s (pos + header_len) plen in
      if crc32 payload <> crc then Error (Corrupt "checksum mismatch")
      else Ok (payload, pos + header_len + plen)
  end
