(* Bounded admission queue with deadline-aware load shedding.

   Named [Jobq], not [Queue]: the library is unwrapped (like every
   library in this repo, so the typed lint pass can find cmts by module
   name), and a toplevel [Queue] unit would collide with the stdlib's
   at link time.

   Shedding happens at both ends. At admission, a full queue or a
   deadline that cannot be met given the current projected wait is
   rejected synchronously with a structured reason — the caller learns
   *why* and, for breaker rejections, when to retry. At dispatch,
   [pop_ready] sheds entries whose deadline passed while they queued:
   starting a job that is already too late wastes a worker slot.

   The reject taxonomy lives here (not in [Service]) because the WAL,
   the daemon protocol and the client all speak it; [reject_code] is
   the stable wire/word for each case. *)

type reject =
  | Queue_full of int
  | Deadline_unmeetable of { wait : float; slack : float }
  | Breaker_open of { job_class : string; retry_after : float }
  | Overloaded of { retry_after : float }
  | Draining
  | Invalid of string

let reject_code = function
  | Queue_full _ -> "busy"
  | Deadline_unmeetable _ -> "deadline"
  | Breaker_open _ -> "breaker"
  | Overloaded _ -> "overload"
  | Draining -> "draining"
  | Invalid _ -> "invalid"

let reject_to_string = function
  | Queue_full cap -> Printf.sprintf "queue full (capacity %d)" cap
  | Deadline_unmeetable { wait; slack } ->
      Printf.sprintf
        "deadline unmeetable: projected wait %.3fs exceeds slack %.3fs" wait
        slack
  | Breaker_open { job_class; retry_after } ->
      Printf.sprintf "circuit breaker open for %s jobs; retry in %.1fs"
        job_class retry_after
  | Overloaded { retry_after } ->
      Printf.sprintf "eval admission rate exceeded; retry in %.3fs" retry_after
  | Draining -> "service is draining; not accepting jobs"
  | Invalid msg -> Printf.sprintf "invalid job: %s" msg

type 'a entry = {
  e_id : string;
  e_deadline : float option;
  e_enqueued_at : float;
  e_payload : 'a;
}

(* Two-list FIFO: O(1) amortized push/pop, no stdlib-Queue collision. *)
type 'a t = {
  q_capacity : int;
  mutable q_front : 'a entry list;
  mutable q_back : 'a entry list;
  mutable q_length : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Jobq.create: capacity must be >= 1";
  { q_capacity = capacity; q_front = []; q_back = []; q_length = 0 }

let length q = q.q_length
let capacity q = q.q_capacity
let is_empty q = q.q_length = 0

let push q entry =
  q.q_back <- entry :: q.q_back;
  q.q_length <- q.q_length + 1

let pop q =
  match q.q_front with
  | e :: rest ->
      q.q_front <- rest;
      q.q_length <- q.q_length - 1;
      Some e
  | [] -> begin
      match List.rev q.q_back with
      | [] -> None
      | e :: rest ->
          q.q_front <- rest;
          q.q_back <- [];
          q.q_length <- q.q_length - 1;
          Some e
    end

(* Recovery path: re-enqueue a journaled job unconditionally. A job
   that was admitted durably before a crash must not be shed by the
   admission check on restart — capacity bounds new work, not the
   backlog we already promised. *)
let enqueue q ~id ~deadline ~now payload =
  push q { e_id = id; e_deadline = deadline; e_enqueued_at = now;
           e_payload = payload }

let admit q ~now ~projected_wait ~id ~deadline payload =
  if q.q_length >= q.q_capacity then Error (Queue_full q.q_capacity)
  else
    match deadline with
    | Some d when d -. now < projected_wait ->
        Error
          (Deadline_unmeetable { wait = projected_wait; slack = d -. now })
    | _ ->
        enqueue q ~id ~deadline ~now payload;
        Ok ()

type 'a popped =
  | Empty
  | Expired of 'a entry
  | Ready of 'a entry

let pop_ready q ~now =
  match pop q with
  | None -> Empty
  | Some e -> begin
      match e.e_deadline with
      | Some d when d <= now -> Expired e
      | _ -> Ready e
    end
