(* The serving tier: versioned models, cached verdicts, admission.

   One [Serve.t] wraps a [Model_store] with an in-memory snapshot of
   the current model. Every batch classifies against exactly one
   snapshot — the snapshot only swaps after a publish has fully
   committed to disk, so a batch arriving while a publish is
   mid-flight is served by the previous version, and no batch ever
   mixes versions.

   The degradation ladder, in order of consultation:

   1. no model published            -> reject [invalid]
   2. all requested verdicts cached -> serve, unconditionally: cache
      hits cost no hom search, so the hot path stays up even when the
      ladder below is shedding
   3. eval breaker open             -> reject [breaker] (repeated
      budget exhaustion means cold evals are not completing; keep
      them off the pool until the cool-down)
   4. token bucket short            -> reject [overload] with a
      retry-after; cold evals pay one token each, so sustained
      overload degrades to cache-only service instead of collapsing
   5. otherwise evaluate the cold entities under the configured
      budget and cache the verdicts.

   Cache keys are canonical neighborhood serializations when the
   model's features are all connected ([Neighborhood.model_radius]);
   key construction itself runs under a small fuel budget and falls
   back to a database-identity key when the ball is too dense to walk
   cheaply — a fallback key is merely less shareable, never wrong. *)

type config = {
  cache_capacity : int;
  eval_rate : float;  (** cold-entity evaluations admitted per second *)
  eval_burst : float;  (** token-bucket depth, in cold evaluations *)
  eval_timeout : float option;  (** budget per classify batch *)
  eval_fuel : int option;
  key_fuel : int;  (** fuel for neighborhood-key construction *)
  breaker_threshold : int;
  breaker_cooldown : float;
  db_cache_slots : int;
}

let default_config =
  {
    cache_capacity = 65536;
    eval_rate = 500.;
    eval_burst = 1000.;
    eval_timeout = Some 5.;
    eval_fuel = Some 5_000_000;
    key_fuel = 200_000;
    breaker_threshold = 5;
    breaker_cooldown = 5.;
    db_cache_slots = 8;
  }

type snapshot = {
  s_version : int;
  s_model : Model_io.model;
  s_radius : int option;
      (* [Some r]: neighborhood keys of radius [r]; [None]: some
         feature is disconnected, use database-identity keys. *)
}

type db_entry = { de_path : string; de_fingerprint : string; de_db : Db.t }

type t = {
  store : Model_store.t;
  cfg : config;
  cache : Eval_cache.t;
  breaker : Breaker.t;
  mutable snapshot : snapshot option;
  mutable tokens : float;
  mutable refilled_at : float;
  mutable dbs : db_entry list;  (* FIFO, newest first *)
  mutable served_batches : int;
  mutable served_entities : int;
  mutable cold_evals : int;
  mutable shed_overload : int;
  mutable shed_breaker : int;
  mutable eval_failures : int;
  mutable publishes : int;
  mutable rollbacks : int;
}

let snapshot_of version model =
  {
    s_version = version;
    s_model = model;
    s_radius = Neighborhood.model_radius model.Model_io.statistic;
  }

let install t version model =
  t.snapshot <- Some (snapshot_of version model);
  Eval_cache.set_version t.cache version

let create ?(config = default_config) store =
  let t =
    {
      store;
      cfg = config;
      cache = Eval_cache.create ~capacity:config.cache_capacity;
      breaker =
        Breaker.create ~threshold:config.breaker_threshold
          ~cooldown:config.breaker_cooldown ();
      snapshot = None;
      tokens = config.eval_burst;
      refilled_at = Budget.Clock.now ();
      dbs = [];
      served_batches = 0;
      served_entities = 0;
      cold_evals = 0;
      shed_overload = 0;
      shed_breaker = 0;
      eval_failures = 0;
      publishes = 0;
      rollbacks = 0;
    }
  in
  (match Model_store.current_version store with
  | Some v -> install t v (Model_store.load store v)
  | None -> ());
  t

let store t = t.store
let current_version t = match t.snapshot with Some s -> Some s.s_version | None -> None

let publish t m =
  let v = Model_store.publish t.store m in
  install t v m;
  t.publishes <- t.publishes + 1;
  v

let rollback t =
  match Model_store.rollback t.store with
  | Error _ as e -> e
  | Ok v ->
      install t v (Model_store.load t.store v);
      t.rollbacks <- t.rollbacks + 1;
      Ok v

let models t = (Model_store.current_version t.store, Model_store.list t.store)

(* Token bucket over the Budget clock (so tests drive time). *)
let refill t =
  let now = Budget.Clock.now () in
  let dt = now -. t.refilled_at in
  if dt > 0. then begin
    t.tokens <- Float.min t.cfg.eval_burst (t.tokens +. (dt *. t.cfg.eval_rate));
    t.refilled_at <- now
  end

let db_identity_key ~db_key e =
  Printf.sprintf "db:%s|%s" db_key (Elem.to_string e)

let key_for t snap ~db_key db e =
  match snap.s_radius with
  | None -> db_identity_key ~db_key e
  | Some r -> (
      let budget = Budget.make ~fuel:t.cfg.key_fuel () in
      match Guard.run budget (fun () -> Neighborhood.key ~radius:r db e) with
      | Ok k -> k
      | Error _ -> db_identity_key ~db_key e)

type served = {
  sv_version : int;
  sv_results : (Elem.t * Labeling.label) list;  (** input order *)
  sv_hits : int;
  sv_cold : int;
}

type outcome =
  | Served of served
  | Shed of Jobq.reject
  | Failed of Guard.failure

let classify t ~db_key ~db entities =
  match t.snapshot with
  | None -> Shed (Jobq.Invalid "no model published")
  | Some snap ->
      refill t;
      Eval_cache.set_version t.cache snap.s_version;
      let keyed =
        List.map (fun e -> (e, key_for t snap ~db_key db e)) entities
      in
      let lookups =
        List.map
          (fun (e, k) ->
            (e, k, Eval_cache.find t.cache ~version:snap.s_version k))
          keyed
      in
      let cold =
        List.filter_map
          (fun (e, k, hit) -> if hit = None then Some (e, k) else None)
          lookups
      in
      let hits = List.length lookups - List.length cold in
      let serve results =
        t.served_batches <- t.served_batches + 1;
        t.served_entities <- t.served_entities + List.length results;
        Served
          {
            sv_version = snap.s_version;
            sv_results = results;
            sv_hits = hits;
            sv_cold = List.length cold;
          }
      in
      if cold = [] then
        (* Rung 2: a pure-hit batch is served even when everything
           below is shedding — this is the degraded-but-hot mode. *)
        serve
          (List.map
             (fun (e, _, hit) -> (e, Option.get hit))
             lookups)
      else begin
        let now = Budget.Clock.now () in
        let need = float_of_int (List.length cold) in
        (* Tokens before breaker: [Breaker.allow] on a recovering
           breaker claims the single half-open probe slot, so it must
           only be consulted once admission is otherwise certain. *)
        if t.tokens < need then begin
          t.shed_overload <- t.shed_overload + 1;
          Shed
            (Jobq.Overloaded
               { retry_after = (need -. t.tokens) /. t.cfg.eval_rate })
        end
        else begin
          if not (Breaker.allow t.breaker ~now) then begin
            t.shed_breaker <- t.shed_breaker + 1;
            Shed
              (Jobq.Breaker_open
                 {
                   job_class = "eval";
                   retry_after = Breaker.retry_after t.breaker ~now;
                 })
          end
          else begin
            t.tokens <- t.tokens -. need;
            let budget =
              Budget.make ?timeout:t.cfg.eval_timeout ?fuel:t.cfg.eval_fuel ()
            in
            let stat = snap.s_model.Model_io.statistic in
            let cls = snap.s_model.Model_io.classifier in
            match
              Guard.run budget (fun () ->
                  List.map
                    (fun (e, k) ->
                      let vec = Statistic.vector stat db e in
                      (e, k, Linsep.classify cls vec))
                    cold)
            with
            | Error f ->
                t.eval_failures <- t.eval_failures + 1;
                if Guard.is_resource_failure f then
                  Breaker.failure t.breaker ~now:(Budget.Clock.now ())
                else Breaker.success t.breaker;
                Failed f
            | Ok cold_results ->
                Breaker.success t.breaker;
                t.cold_evals <- t.cold_evals + List.length cold_results;
                List.iter
                  (fun (_, k, lab) ->
                    Eval_cache.add t.cache ~version:snap.s_version k lab)
                  cold_results;
                let verdicts =
                  List.map
                    (fun (e, k, hit) ->
                      match hit with
                      | Some lab -> (e, lab)
                      | None ->
                          let _, _, lab =
                            List.find (fun (e', k', _) -> e' = e && k' = k)
                              cold_results
                          in
                          (e, lab))
                    lookups
                in
                serve verdicts
          end
        end
      end

(* Parsed-database cache keyed by path, revalidated by stat identity:
   device, inode, mtime (ns) and size. A changed file reparses; a
   rewritten-in-place file with identical stats is
   indistinguishable, as with any mtime-based cache. *)
let fingerprint st =
  Printf.sprintf "%d:%d:%h:%Ld" st.Unix.LargeFile.st_dev
    st.Unix.LargeFile.st_ino st.Unix.LargeFile.st_mtime
    st.Unix.LargeFile.st_size

let load_db t path =
  match Unix.LargeFile.stat path with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot stat %s: %s" path (Unix.error_message e))
  | st -> (
      let fp = fingerprint st in
      match
        List.find_opt
          (fun de -> de.de_path = path && de.de_fingerprint = fp)
          t.dbs
      with
      | Some de -> Ok (fp, de.de_db)
      | None -> (
          match Textfmt.parse_file path with
          | exception Textfmt.Parse_error msg ->
              Error (Printf.sprintf "cannot parse %s: %s" path msg)
          | exception Sys_error msg -> Error msg
          | doc ->
              let db = doc.Textfmt.db in
              let keep =
                List.filteri
                  (fun i de -> i < t.cfg.db_cache_slots - 1 && de.de_path <> path)
                  t.dbs
              in
              t.dbs <- { de_path = path; de_fingerprint = fp; de_db = db } :: keep;
              Ok (fp, db)))

type stats = {
  st_version : int option;
  st_served_batches : int;
  st_served_entities : int;
  st_cache : Eval_cache.stats;
  st_cold_evals : int;
  st_shed_overload : int;
  st_shed_breaker : int;
  st_eval_failures : int;
  st_publishes : int;
  st_rollbacks : int;
  st_tokens : float;
}

let stats t =
  refill t;
  {
    st_version = current_version t;
    st_served_batches = t.served_batches;
    st_served_entities = t.served_entities;
    st_cache = Eval_cache.stats t.cache;
    st_cold_evals = t.cold_evals;
    st_shed_overload = t.shed_overload;
    st_shed_breaker = t.shed_breaker;
    st_eval_failures = t.eval_failures;
    st_publishes = t.publishes;
    st_rollbacks = t.rollbacks;
    st_tokens = t.tokens;
  }
