(** Bounded verdict cache for the serving tier, version-tagged.

    Keys are canonical entity-neighborhood strings ({!Neighborhood})
    or database-identity fallbacks; values are classification labels.
    Entries belong to one model version: {!set_version} (called on
    every publish/rollback) clears the table, so a verdict can never
    be served under a model it was not computed with. FIFO eviction
    bounds memory. All live caches hang off one registered
    {!Runtime_state} entry, so [reset_caches] in forked workers
    empties them (correctness is unaffected — entries recompute). *)

type t

(** @raise Invalid_argument when [capacity < 1]. *)
val create : capacity:int -> t

(** [set_version t v] flips the cache to model version [v], clearing
    it if [v] differs from the current version. *)
val set_version : t -> int -> unit

(** [find t ~version key] — a hit only if the cache holds [key] {e at
    that version}. Counts hit/miss. *)
val find : t -> version:int -> string -> Labeling.label option

(** [add t ~version key label] records a verdict (flipping the cache
    to [version] first if needed), evicting FIFO at capacity. *)
val add : t -> version:int -> string -> Labeling.label -> unit

type stats = {
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
  flips : int;
}

val stats : t -> stats
