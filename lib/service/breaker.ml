(* Per-job-class circuit breaker.

   Classic three-state machine on the {!Budget.Clock}: [Closed] counts
   consecutive resource failures and trips at the threshold; [Open]
   rejects everything until the cool-down elapses; then a single probe
   is let through ([Half_open]) and its outcome decides — success
   closes the breaker, failure re-opens it for a fresh cool-down.

   Only *resource* failures (timeouts, fuel, limits — the kinds that
   signal an overloaded or wedged worker pool) count against the
   breaker. A [Solver_error] is the job's own fault: deterministic bad
   input trips nothing, and as a half-open probe it proves the
   machinery healthy, so it closes the breaker like a success. *)

type state =
  | Closed
  | Open
  | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type phase =
  | Ph_closed
  | Ph_open of float  (* when it opened, Budget.Clock time *)
  | Ph_half_open  (* one probe in flight *)

type t = {
  b_threshold : int;
  b_cooldown : float;
  mutable b_failures : int;  (* consecutive, while closed *)
  mutable b_phase : phase;
}

let create ?(threshold = 5) ?(cooldown = 30.0) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  if cooldown <= 0.0 then invalid_arg "Breaker.create: cooldown must be > 0";
  { b_threshold = threshold; b_cooldown = cooldown; b_failures = 0;
    b_phase = Ph_closed }

let state t ~now =
  match t.b_phase with
  | Ph_closed -> Closed
  | Ph_half_open -> Half_open
  | Ph_open since -> if now -. since >= t.b_cooldown then Half_open else Open

let allow t ~now =
  match t.b_phase with
  | Ph_closed -> true
  | Ph_half_open -> false  (* the probe slot is taken *)
  | Ph_open since ->
      if now -. since >= t.b_cooldown then begin
        (* Cool-down over: admit exactly one probe. *)
        t.b_phase <- Ph_half_open;
        true
      end
      else false

let retry_after t ~now =
  match t.b_phase with
  | Ph_open since -> Float.max 0.0 (since +. t.b_cooldown -. now)
  | Ph_closed | Ph_half_open -> 0.0

let success t =
  t.b_failures <- 0;
  t.b_phase <- Ph_closed

let failure t ~now =
  match t.b_phase with
  | Ph_half_open ->
      (* The probe failed: straight back to open, fresh cool-down. *)
      t.b_failures <- t.b_threshold;
      t.b_phase <- Ph_open now
  | Ph_open _ -> ()  (* late result from before the trip; already open *)
  | Ph_closed ->
      t.b_failures <- t.b_failures + 1;
      if t.b_failures >= t.b_threshold then t.b_phase <- Ph_open now
