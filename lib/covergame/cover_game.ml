(* Greatest-fixpoint decision of the existential k-cover game.

   Positions are partial homomorphisms keyed by (covered-set index,
   assignment). Two kill conditions drive a worklist:
   - forth: a position with domain X dies when, for some element a with
     X ∪ {a} still k-covered, none of its one-element extensions by a
     is alive (Spoiler pebbles a and Duplicator has no answer);
   - restriction-closure: a position dies when one of its one-element
     restrictions died (Spoiler removes pebbles first, then wins from
     the smaller position).
   Duplicator wins iff the empty position survives the fixpoint. *)

let set_key s = Elem.Set.elements s

(* All k-covered subsets of dom(d): every subset of a union of at most
   k facts. Returns the sets plus a membership table. *)
let covered_sets ~k d =
  let facts = Array.of_list (Db.facts d) in
  let nf = Array.length facts in
  let seen = Hashtbl.create 256 in
  let out = ref [] in
  let add s =
    let key = set_key s in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      out := s :: !out
    end
  in
  let rec subsets elems current =
    Budget.tick ~what:"cover game: covered sets" ();
    match elems with
    | [] -> add current
    | e :: rest ->
        subsets rest current;
        subsets rest (Elem.Set.add e current)
  in
  let rec unions start depth current =
    Budget.tick ~what:"cover game: union enumeration" ();
    subsets (Elem.Set.elements current) Elem.Set.empty;
    if depth < k then
      for i = start to nf - 1 do
        unions (i + 1) (depth + 1)
          (Elem.Set.union current (Fact.elems facts.(i)))
      done
  in
  unions 0 0 Elem.Set.empty;
  (!out, seen)

let covered_subsets ~k d = fst (covered_sets ~k d)

(* Partial homomorphisms with domain exactly [x] (a k-covered set),
   forced on pinned elements, respecting the facts of [d] lying inside
   x ∪ pinned. *)
let positions_of_set ~d ~d' ~pin x =
  let pin_dom =
    Elem.Map.fold (fun a _ acc -> Elem.Set.add a acc) pin Elem.Set.empty
  in
  let scope = Elem.Set.union x pin_dom in
  let facts_in =
    List.filter
      (fun f -> Elem.Set.subset (Fact.elems f) scope)
      (List.concat_map
         (fun e -> Db.facts_with_elem e d)
         (Elem.Set.elements scope))
  in
  let facts_in = List.sort_uniq Fact.compare facts_in in
  let dom_d' = Elem.Set.elements (Db.domain d') in
  let elems = Elem.Set.elements x in
  let check asg =
    (* Facts whose elements are all assigned must map into d'. *)
    List.for_all
      (fun f ->
        let ok = ref true in
        let mapped =
          Array.map
            (fun a ->
              match Elem.Map.find_opt a asg with
              | Some v -> v
              | None ->
                  ok := false;
                  a)
            (Fact.args f)
        in
        (not !ok) || Db.mem (Fact.make (Fact.rel f) mapped) d')
      facts_in
  in
  let results = ref [] in
  let rec assign todo asg =
    Budget.tick ~what:"cover game: positions" ();
    match todo with
    | [] -> results := asg :: !results
    | e :: rest -> begin
        match Elem.Map.find_opt e pin with
        | Some v ->
            let asg' = Elem.Map.add e v asg in
            if check asg' then assign rest asg'
        | None ->
            List.iter
              (fun v ->
                let asg' = Elem.Map.add e v asg in
                if check asg' then assign rest asg')
              dom_d'
      end
  in
  let seed = pin in
  if check seed then assign elems seed;
  (* Strip the pinned-but-not-pebbled entries so that the stored
     assignment has domain exactly x. *)
  List.map
    (fun asg -> Elem.Map.filter (fun a _ -> Elem.Set.mem a x) asg)
    !results

(* The [check] above re-verifies all facts at every step; acceptable
   for the small scopes of covered sets (≤ k·arity + |pin| elements). *)

(* Shared context: everything about the game between d and d' that
   does not depend on the pinned tuple — the covered sets, the full
   unpinned position lattice and its parent/child links. A pinned
   query then only filters the initially-alive positions and reruns
   the kill propagation, which makes the n^2 games of [preorder]
   dramatically cheaper. *)

type context = {
  k : int;
  d : Db.t;
  d' : Db.t;
  set_arr : Elem.Set.t array;
  valid_ext : Elem.t list array;  (* per set: legal pebble additions *)
  pos_set : int array;  (* per position: its covered-set index *)
  pos_asg : Elem.t Elem.Map.t array;  (* per position: the mapping *)
  c_links : (Elem.t * int) list array;  (* children by extension elem *)
  parent_of : (int * Elem.t) list array;
  empty_pos : int option;  (* id of the empty position *)
}

let make_context ~k d d' =
  if k < 1 then invalid_arg "Cover_game.make_context: k must be >= 1";
  let sets, set_tbl = covered_sets ~k d in
  let set_arr = Array.of_list sets in
  let nsets = Array.length set_arr in
  let set_index = Hashtbl.create 256 in
  Array.iteri (fun i s -> Hashtbl.replace set_index (set_key s) i) set_arr;
  let covered s = Hashtbl.mem set_tbl (set_key s) in
  let pos_tbl = Hashtbl.create 1024 in
  let pos_list = ref [] in
  let npos = ref 0 in
  for si = 0 to nsets - 1 do
    let x = set_arr.(si) in
    let homs = positions_of_set ~d ~d' ~pin:Elem.Map.empty x in
    List.iter
      (fun asg ->
        let key = (si, Elem.Map.bindings asg) in
        if not (Hashtbl.mem pos_tbl key) then begin
          Hashtbl.replace pos_tbl key !npos;
          pos_list := (si, asg) :: !pos_list;
          incr npos
        end)
      homs
  done;
  let positions = Array.of_list (List.rev !pos_list) in
  let n = !npos in
  let pos_set = Array.map fst positions in
  let pos_asg = Array.map snd positions in
  let c_links = Array.make n [] in
  let parent_of = Array.make n [] in
  Array.iteri
    (fun id (si, asg) ->
      let x = set_arr.(si) in
      Elem.Set.iter
        (fun c ->
          let px = Elem.Set.remove c x in
          match Hashtbl.find_opt set_index (set_key px) with
          | None -> () (* unreachable: subsets of covered sets are covered *)
          | Some psi ->
              let pasg = Elem.Map.remove c asg in
              let pkey = (psi, Elem.Map.bindings pasg) in
              (match Hashtbl.find_opt pos_tbl pkey with
              | None -> () (* unreachable: restrictions of homs are homs *)
              | Some pid ->
                  c_links.(pid) <- (c, id) :: c_links.(pid);
                  parent_of.(id) <- (pid, c) :: parent_of.(id)))
        x)
    positions;
  let valid_ext = Array.make nsets [] in
  let dom_list = Elem.Set.elements (Db.domain d) in
  for si = 0 to nsets - 1 do
    Budget.tick ~what:"cover game: valid extensions" ();
    let x = set_arr.(si) in
    valid_ext.(si) <-
      List.filter
        (fun a -> (not (Elem.Set.mem a x)) && covered (Elem.Set.add a x))
        dom_list
  done;
  let empty_pos =
    match Hashtbl.find_opt set_index [] with
    | None -> None
    | Some esi -> Hashtbl.find_opt pos_tbl (esi, [])
  in
  { k; d; d'; set_arr; valid_ext; pos_set; pos_asg; c_links; parent_of;
    empty_pos }

(* Is a stored unpinned position compatible with the pin: pinned
   elements it pebbles must carry the pinned values, and the facts of
   [d] inside (its set ∪ pinned elements) that touch a pinned element
   must map into [d'] under (assignment ∪ pin). *)
let pin_compatible ctx ~pin ~pin_facts id =
  let asg = ctx.pos_asg.(id) in
  let x = ctx.set_arr.(ctx.pos_set.(id)) in
  Elem.Map.for_all
    (fun a b ->
      match Elem.Map.find_opt a asg with
      | Some v -> Elem.equal v b
      | None -> true)
    pin
  && List.for_all
       (fun f ->
         let ok = ref true in
         let mapped =
           Array.map
             (fun a ->
               match Elem.Map.find_opt a pin with
               | Some v -> v
               | None -> begin
                   match Elem.Map.find_opt a asg with
                   | Some v -> v
                   | None ->
                       (* element outside x ∪ pin: fact not in scope *)
                       ok := false;
                       a
                 end)
             (Fact.args f)
         in
         (not !ok) || Db.mem (Fact.make (Fact.rel f) mapped) ctx.d')
       (pin_facts x)

let holds_ctx ctx ~pin:pin_list =
  (* A pin mapping one element to two targets is not a function. *)
  let consistent = ref true in
  let pin =
    List.fold_left
      (fun acc (a, b) ->
        match Elem.Map.find_opt a acc with
        | Some b' when not (Elem.equal b b') ->
            consistent := false;
            acc
        | _ -> Elem.Map.add a b acc)
      Elem.Map.empty pin_list
  in
  if not !consistent then false
  else begin
    let pin = Elem.Map.filter (fun a _ -> Elem.Set.mem a (Db.domain ctx.d)) pin in
    (* facts of d touching a pinned element, indexed lazily per set *)
    let pin_fact_pool =
      List.sort_uniq Fact.compare
        (Elem.Map.fold
           (fun a _ acc -> Db.facts_with_elem a ctx.d @ acc)
           pin [])
    in
    let pin_dom =
      Elem.Map.fold (fun a _ acc -> Elem.Set.add a acc) pin Elem.Set.empty
    in
    let pin_facts x =
      let scope = Elem.Set.union x pin_dom in
      List.filter (fun f -> Elem.Set.subset (Fact.elems f) scope) pin_fact_pool
    in
    let n = Array.length ctx.pos_set in
    if n = 0 then false
    else begin
      let alive = Array.make n false in
      for id = 0 to n - 1 do
        Budget.tick ~what:"cover game: pin filter" ();
        alive.(id) <- pin_compatible ctx ~pin ~pin_facts id
      done;
      (* surviving-extension counts per (parent, extension element) *)
      let ext_count = Hashtbl.create 1024 in
      let bump key delta =
        let c =
          match Hashtbl.find_opt ext_count key with Some c -> c | None -> 0
        in
        Hashtbl.replace ext_count key (c + delta)
      in
      for pid = 0 to n - 1 do
        Budget.tick ~what:"cover game: extension counts" ();
        List.iter
          (fun (c, child) -> if alive.(child) then bump (pid, c) 1)
          ctx.c_links.(pid)
      done;
      let queue = Queue.create () in
      let kill id =
        if alive.(id) then begin
          alive.(id) <- false;
          Queue.add id queue
        end
      in
      (* initial forth failures *)
      for id = 0 to n - 1 do
        Budget.tick ~what:"cover game: forth check" ();
        if alive.(id) then
          List.iter
            (fun a ->
              let c =
                match Hashtbl.find_opt ext_count (id, a) with
                | Some c -> c
                | None -> 0
              in
              if c = 0 then kill id)
            ctx.valid_ext.(ctx.pos_set.(id))
      done;
      (* also: dead-by-pin positions must still drag down their
         parents' counts — handled above since counts only include
         alive children — and their restriction-closure effect: a dead
         position's children must die. Enqueue dead ones' children. *)
      for id = 0 to n - 1 do
        Budget.tick ~what:"cover game: kill propagation" ();
        if not alive.(id) then
          List.iter (fun (_, child) -> kill child) ctx.c_links.(id)
      done;
      while not (Queue.is_empty queue) do
        Budget.tick ~what:"cover game: kill propagation" ();
        let id = Queue.pop queue in
        List.iter (fun (_, child) -> kill child) ctx.c_links.(id);
        List.iter
          (fun (pid, c) ->
            if alive.(pid) then begin
              bump (pid, c) (-1);
              let cnt =
                match Hashtbl.find_opt ext_count (pid, c) with
                | Some c -> c
                | None -> 0
              in
              if cnt <= 0 then kill pid
            end)
          ctx.parent_of.(id)
      done;
      match ctx.empty_pos with Some id -> alive.(id) | None -> false
    end
  end

let game ~k d pin d' =
  let ctx = make_context ~k d d' in
  holds_ctx ctx ~pin:(Elem.Map.bindings pin)

let holds ~k (d, tuple) (d', tuple') =
  if k < 1 then invalid_arg "Cover_game.holds: k must be >= 1";
  if List.length tuple <> List.length tuple' then
    invalid_arg "Cover_game.holds: tuples of different lengths";
  (* A pin that maps one element to two distinct targets is not a
     function, hence not a partial homomorphism: Spoiler wins. *)
  let consistent = ref true in
  let pin =
    List.fold_left2
      (fun acc a b ->
        match Elem.Map.find_opt a acc with
        | Some b' when not (Elem.equal b b') ->
            consistent := false;
            acc
        | _ -> Elem.Map.add a b acc)
      Elem.Map.empty tuple tuple'
  in
  !consistent && game ~k d pin d'

let holds1 ~k (d, a) (d', b) = holds ~k (d, [ a ]) (d', [ b ])
let boolean ~k d d' = holds ~k (d, []) (d', [])

let preorder ?(transitive_pruning = true) ~k d entities =
  let ents = Array.of_list entities in
  let n = Array.length ents in
  let m = Array.make_matrix n n false in
  (* →_k is reflexive and transitive; fill the matrix with closure
     pruning: once m.(i).(j) and m.(j).(l) are known, m.(i).(l) is
     forced true. [transitive_pruning] exists only so the ablation
     bench can measure what the pruning saves. *)
  let known = Array.make_matrix n n false in
  let set i j v =
    if not known.(i).(j) then begin
      known.(i).(j) <- true;
      m.(i).(j) <- v
    end
  in
  let ctx = make_context ~k d d in
  if transitive_pruning then
    (* cqlint: allow R1 — loop bounded by the entity count *)
    for i = 0 to n - 1 do
      set i i true
    done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if not known.(i).(j) then begin
        let v = holds_ctx ctx ~pin:[ (ents.(i), ents.(j)) ] in
        set i j v;
        if v && transitive_pruning then
          (* cqlint: allow R1 — closure pass bounded by the entity count *)
          for l = 0 to n - 1 do
            if known.(j).(l) && m.(j).(l) then set i l true;
            if known.(l).(i) && m.(l).(i) then set l j true
          done
      end
    done
  done;
  m

let default_budget = function
  | Some b -> b
  | None -> Budget.installed ()

let holds_b ?budget ~k (d, tuple) (d', tuple') =
  Guard.run (default_budget budget) (fun () -> holds ~k (d, tuple) (d', tuple'))

let preorder_b ?budget ?transitive_pruning ~k d entities =
  Guard.run (default_budget budget) (fun () ->
      preorder ?transitive_pruning ~k d entities)

let equiv_classes ~k d entities =
  let ents = Array.of_list entities in
  let n = Array.length ents in
  let m = preorder ~k d entities in
  let assigned = Array.make n false in
  let classes = ref [] in
  (* cqlint: allow R1 — grouping pass bounded by the entity count *)
  for i = 0 to n - 1 do
    if not assigned.(i) then begin
      let cls = ref [] in
      (* cqlint: allow R1 — grouping pass bounded by the entity count *)
      for j = n - 1 downto 0 do
        if (not assigned.(j)) && m.(i).(j) && m.(j).(i) then begin
          assigned.(j) <- true;
          cls := ents.(j) :: !cls
        end
      done;
      (* The representative e_i comes first. *)
      let cls =
        ents.(i) :: List.filter (fun e -> not (Elem.equal e ents.(i))) !cls
      in
      classes := cls :: !classes
    end
  done;
  List.rev !classes
