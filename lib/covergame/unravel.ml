(* Tree-of-covered-sets construction. Variables are
   [Tup [Int node_id; a]] for element a first reached at node node_id;
   the distinguished element becomes the free variable everywhere. *)

let unravel ~k ~depth (d, e) =
  if k < 1 then invalid_arg "Unravel.unravel: k must be >= 1";
  if depth < 0 then invalid_arg "Unravel.unravel: negative depth";
  let sets =
    List.filter
      (fun s -> not (Elem.Set.is_empty s))
      (Cover_game.covered_subsets ~k d)
  in
  let free = Cq.default_free in
  let counter = ref 0 in
  let atoms = ref [] in
  (* [var_map] maps the elements of the current node's set to their
     variables (inherited from the parent on shared elements). *)
  let emit_atoms x var_map =
    let scope = Elem.Set.add e x in
    let translate a =
      if Elem.equal a e then free else Elem.Map.find a var_map
    in
    List.iter
      (fun f ->
        if Elem.Set.subset (Fact.elems f) scope then
          atoms := Fact.map_elems translate f :: !atoms)
      (List.sort_uniq Fact.compare
         (List.concat_map
            (fun a -> Db.facts_with_elem a d)
            (Elem.Set.elements scope)))
  in
  let rec node x var_map remaining =
    Budget.tick ~what:"unravel: node expansion" ();
    emit_atoms x var_map;
    if remaining > 0 then
      List.iter
        (fun y ->
          incr counter;
          let id = !counter in
          let var_map' =
            Elem.Set.fold
              (fun a acc ->
                let v =
                  if Elem.equal a e then free
                  else begin
                    match Elem.Map.find_opt a var_map with
                    | Some v when Elem.Set.mem a x -> v
                    | _ -> Elem.tup [ Elem.int id; a ]
                  end
                in
                Elem.Map.add a v acc)
              y Elem.Map.empty
          in
          node y var_map' (remaining - 1))
        sets
  in
  node Elem.Set.empty Elem.Map.empty depth;
  Cq.make ~free !atoms

let node_count ~k ~depth d =
  let s =
    List.length
      (List.filter
         (fun set -> not (Elem.Set.is_empty set))
         (Cover_game.covered_subsets ~k d))
  in
  (* cqlint: allow R1 — arithmetic recursion bounded by the unraveling depth *)
  let rec go level acc width =
    if level > depth then acc else go (level + 1) (acc + width) (width * s)
  in
  go 0 0 1

let stable_unravel ~k ~max_depth (d, e) =
  let rec go prev depth =
    if depth > max_depth then (prev, depth - 1)
    else begin
      let q = unravel ~k ~depth (d, e) in
      if Cq.equivalent prev q then (prev, depth - 1) else go q (depth + 1)
    end
  in
  go (unravel ~k ~depth:0 (d, e)) 1
