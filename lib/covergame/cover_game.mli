(** The existential k-cover game of Chen & Dalmau (Prop 5.1/5.2 of the
    paper).

    [(D, ā) →_k (D', b̄)] holds iff Duplicator wins the existential
    k-cover game: Spoiler pebbles elements of [D] (the pebbled set must
    stay coverable by at most [k] facts of [D]), Duplicator answers in
    [D'], and the correspondence (including [ā ↦ b̄]) must remain a
    partial homomorphism at all times.

    The decision procedure is the standard greatest-fixpoint
    computation: start from all partial homomorphisms whose domain is a
    k-covered set (agreeing with [ā ↦ b̄] and respecting every fact of
    [D] inside domain ∪ ā), then repeatedly delete maps that (a) lost
    all extensions to some one-element k-covered enlargement of their
    domain, or (b) lost a restriction (Spoiler can remove pebbles).
    Duplicator wins iff the empty map survives. Polynomial for fixed
    [k] (Prop 5.1); the constant grows quickly with [k] and the arity,
    which is faithful to the theory.

    Key consequences used across the library (Prop 5.2): for a CQ [q] of
    ghw ≤ k, [ā ∈ q(D)] iff [(D_q, x̄) →_k (D, ā)]; and [(D,ā) →_k
    (D',b̄)] iff every GHW(k) query selecting [ā] in [D] selects [b̄] in
    [D']. *)

(** [covered_subsets ~k d] is every k-covered subset of [dom d]: the
    subsets of unions of at most [k] facts (the legal pebble sets of
    Spoiler). Includes the empty set. *)
val covered_subsets : k:int -> Db.t -> Elem.Set.t list

type context
(** Precomputed game structure between a fixed pair of databases: the
    covered sets and the unpinned position lattice. Lets many pinned
    queries (e.g. the n² of {!preorder}) share the expensive
    enumeration. *)

(** [make_context ~k d d'] precomputes the game between [d] and [d'].
    @raise Invalid_argument if [k < 1]. *)
val make_context : k:int -> Db.t -> Db.t -> context

(** [holds_ctx ctx ~pin] decides [(d, ā) →_k (d', b̄)] for the pinned
    pairs [pin = List.combine ā b̄] over a precomputed context. *)
val holds_ctx : context -> pin:(Elem.t * Elem.t) list -> bool

(** [holds ~k (d, as_) (d', bs)] decides [(d, ā) →_k (d', b̄)].
    @raise Invalid_argument if [k < 1] or tuple lengths differ. *)
val holds : k:int -> Db.t * Elem.t list -> Db.t * Elem.t list -> bool

(** [holds1 ~k (d, a) (d', b)] is {!holds} on single points. *)
val holds1 : k:int -> Db.t * Elem.t -> Db.t * Elem.t -> bool

(** [boolean ~k d d'] is the unpointed game [d →_k d']. *)
val boolean : k:int -> Db.t -> Db.t -> bool

(** [preorder ~k d entities] is the matrix [m] with [m.(i).(j)]
    equal to [(d, e_i) →_k (d, e_j)]. This is the relation [≼] of
    Lemma 5.4 (with [e ≼ e'] iff [e' ∈ q_e(D)] iff
    [(D,e) →_k (D,e')]). Reflexivity and transitivity of [→_k] are
    exploited to prune game computations unless [transitive_pruning]
    is disabled (ablation knob; the result is identical). *)
val preorder :
  ?transitive_pruning:bool -> k:int -> Db.t -> Elem.t list -> bool array array

(** [holds_b ?budget ~k pd pd'] is {!holds} run under [budget]
    (default: the ambient budget): always returns, converting resource
    exhaustion into [Error]. *)
val holds_b :
  ?budget:Budget.t -> k:int -> Db.t * Elem.t list -> Db.t * Elem.t list ->
  (bool, Guard.failure) result

(** [preorder_b ?budget ?transitive_pruning ~k d entities] is the
    budgeted {!preorder}. *)
val preorder_b :
  ?budget:Budget.t -> ?transitive_pruning:bool -> k:int -> Db.t ->
  Elem.t list -> (bool array array, Guard.failure) result

(** [equiv_classes ~k d entities] groups entities by mutual [→_k]
    (the classes [[e]] of Algorithm 2), returned with representatives
    first. *)
val equiv_classes : k:int -> Db.t -> Elem.t list -> Elem.t list list
